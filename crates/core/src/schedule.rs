//! Communication schedules and their evaluation.
//!
//! A [`Schedule`] is the output of every heuristic: an ordered list of
//! committed transfers plus the resulting deliveries. [`Evaluation`]
//! computes the paper's global criterion — the weighted sum of priorities
//! of satisfied requests (the negated effect `E[S_h]`, §3) — along with
//! per-priority-class counts used by the §5.4 comparisons.
//!
//! [`Schedule::validate`] independently replays a schedule against a fresh
//! resource ledger, re-deriving copy availability, and rejects any
//! schedule that violates the model. The test suites run every heuristic's
//! output through it.

use serde::{Deserialize, Serialize};

use dstage_model::ids::{DataItemId, MachineId, RequestId, VirtualLinkId};
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;
use dstage_model::time::SimTime;
use dstage_resources::ledger::NetworkLedger;

/// One committed point-to-point communication step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transfer {
    /// The data item moved.
    pub item: DataItemId,
    /// Sending machine (holds a copy before `start`).
    pub from: MachineId,
    /// Receiving machine (holds a copy from `arrival`).
    pub to: MachineId,
    /// The virtual link used.
    pub link: VirtualLinkId,
    /// Link occupancy start.
    pub start: SimTime,
    /// Completion; the copy is available at `to` from this time.
    pub arrival: SimTime,
}

/// A delivery: the moment a request's destination first held the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Delivery {
    /// The satisfied request.
    pub request: RequestId,
    /// When the item became available at the destination.
    pub at: SimTime,
    /// Number of hops on the path that completed this delivery (a
    /// diagnostic for the links-traversed statistic; 0 when unknown).
    pub hops: u32,
}

/// The outcome of one scheduling run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    transfers: Vec<Transfer>,
    deliveries: Vec<Delivery>,
}

impl Schedule {
    /// Creates a schedule from raw parts.
    ///
    /// Intended for schedulers; library users normally obtain schedules
    /// from the heuristics and only read them.
    #[must_use]
    pub fn from_parts(transfers: Vec<Transfer>, deliveries: Vec<Delivery>) -> Self {
        Schedule { transfers, deliveries }
    }

    /// The committed transfers, in commit order.
    #[must_use]
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// The satisfied requests with their delivery times.
    #[must_use]
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Whether `request` was satisfied, and when.
    #[must_use]
    pub fn delivery_of(&self, request: RequestId) -> Option<Delivery> {
        self.deliveries.iter().copied().find(|d| d.request == request)
    }

    /// Evaluates the schedule under a priority weighting: the paper's
    /// global optimization criterion and per-class breakdowns.
    #[must_use]
    pub fn evaluate(&self, scenario: &Scenario, weights: &PriorityWeights) -> Evaluation {
        let levels = weights.levels() as usize;
        let mut satisfied_by_priority = vec![0u64; levels];
        let mut total_by_priority = vec![0u64; levels];
        let mut weighted_sum = 0u64;
        let mut total_hops = 0u64;
        for (_, req) in scenario.requests() {
            total_by_priority[req.priority().level() as usize] += 1;
        }
        for d in &self.deliveries {
            let req = scenario.request(d.request);
            let level = req.priority().level() as usize;
            satisfied_by_priority[level] += 1;
            weighted_sum += weights.weight(req.priority());
            total_hops += u64::from(d.hops);
        }
        let satisfied_count: u64 = satisfied_by_priority.iter().sum();
        Evaluation {
            weighted_sum,
            satisfied_count,
            request_count: scenario.request_count() as u64,
            satisfied_by_priority,
            total_by_priority,
            mean_hops_per_delivery: if satisfied_count == 0 {
                0.0
            } else {
                total_hops as f64 / satisfied_count as f64
            },
        }
    }

    /// Independently replays the schedule against a fresh ledger and
    /// checks every model constraint; returns the deliveries the replay
    /// derives (which must cover the schedule's claimed deliveries).
    ///
    /// Checked constraints:
    /// 1. every transfer's link matches its `from`/`to` machines;
    /// 2. transfers fit their link's availability window and never overlap
    ///    on the same virtual link;
    /// 3. the sending machine holds a copy of the item no later than the
    ///    transfer's start;
    /// 4. arrival equals start plus the link's transfer time;
    /// 5. receiving machines can store the item through its hold deadline
    ///    (GC time for intermediates, horizon for requesting destinations);
    /// 6. every claimed delivery is backed by a copy at the destination no
    ///    later than the claimed time, within the deadline.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleViolation`] encountered.
    pub fn validate(&self, scenario: &Scenario) -> Result<Vec<Delivery>, ScheduleViolation> {
        let network = scenario.network();
        let mut ledger = NetworkLedger::new(network);
        // copies[item][machine] = earliest availability there.
        let m = network.machine_count();
        let mut copies: Vec<Vec<Option<SimTime>>> = vec![vec![None; m]; scenario.item_count()];
        for (item_id, item) in scenario.items() {
            for src in item.sources() {
                copies[item_id.index()][src.machine.index()] = Some(src.available_at);
                ledger.force_storage(
                    src.machine,
                    item.size(),
                    src.available_at,
                    scenario.horizon(),
                );
            }
        }
        // Destination set per item, for hold policy.
        let is_destination = |item: DataItemId, machine: MachineId| {
            scenario
                .requests_for(item)
                .iter()
                .any(|&r| scenario.request(r).destination() == machine)
        };

        let mut ordered: Vec<&Transfer> = self.transfers.iter().collect();
        ordered.sort_by_key(|t| (t.start, t.link));
        for t in ordered {
            if t.item.index() >= scenario.item_count() {
                return Err(ScheduleViolation::UnknownItem { transfer: *t });
            }
            let link = if t.link.index() < network.link_count() {
                network.link(t.link)
            } else {
                return Err(ScheduleViolation::UnknownLink { transfer: *t });
            };
            if link.source() != t.from || link.destination() != t.to {
                return Err(ScheduleViolation::EndpointMismatch { transfer: *t });
            }
            let item = scenario.item(t.item);
            let expected_arrival = t.start + link.transfer_time(item.size());
            if expected_arrival != t.arrival {
                return Err(ScheduleViolation::WrongArrival {
                    transfer: *t,
                    expected: expected_arrival,
                });
            }
            match copies[t.item.index()][t.from.index()] {
                Some(avail) if avail <= t.start => {}
                _ => return Err(ScheduleViolation::SourceMissingCopy { transfer: *t }),
            }
            let hold_until = if is_destination(t.item, t.to) {
                scenario.horizon()
            } else {
                scenario.gc_time(t.item).unwrap_or(scenario.horizon())
            };
            ledger.commit_transfer(network, t.link, t.start, item.size(), hold_until).map_err(
                |source| ScheduleViolation::ResourceConflict {
                    transfer: *t,
                    reason: source.to_string(),
                },
            )?;
            let slot = &mut copies[t.item.index()][t.to.index()];
            if slot.is_none_or(|existing| t.arrival < existing) {
                *slot = Some(t.arrival);
            }
        }

        // Derive deliveries from replayed copies.
        let mut derived = Vec::new();
        for (req_id, req) in scenario.requests() {
            if let Some(at) = copies[req.item().index()][req.destination().index()] {
                if at <= req.deadline() {
                    derived.push(Delivery { request: req_id, at, hops: 0 });
                }
            }
        }
        // Every claimed delivery must be backed by the replay.
        for claimed in &self.deliveries {
            let Some(backing) = derived.iter().find(|d| d.request == claimed.request) else {
                return Err(ScheduleViolation::UnbackedDelivery { delivery: *claimed });
            };
            if backing.at > claimed.at {
                return Err(ScheduleViolation::UnbackedDelivery { delivery: *claimed });
            }
        }
        Ok(derived)
    }
}

/// Aggregate quality measures of a schedule under a priority weighting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The paper's objective: Σ `W[Priority[j,k]]` over satisfied requests.
    pub weighted_sum: u64,
    /// Number of satisfied requests.
    pub satisfied_count: u64,
    /// Total number of requests in the scenario.
    pub request_count: u64,
    /// Satisfied requests per priority level (index = level).
    pub satisfied_by_priority: Vec<u64>,
    /// All requests per priority level (index = level).
    pub total_by_priority: Vec<u64>,
    /// Mean hops per satisfied request (the links-traversed statistic);
    /// 0 when hop counts were not recorded.
    pub mean_hops_per_delivery: f64,
}

impl Evaluation {
    /// Fraction of requests satisfied.
    #[must_use]
    pub fn satisfaction_rate(&self) -> f64 {
        if self.request_count == 0 {
            return 1.0;
        }
        self.satisfied_count as f64 / self.request_count as f64
    }
}

/// A model violation found by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// The transfer references an item outside the scenario.
    UnknownItem {
        /// The offending transfer.
        transfer: Transfer,
    },
    /// The transfer references a link outside the network.
    UnknownLink {
        /// The offending transfer.
        transfer: Transfer,
    },
    /// The transfer's machines do not match the link's endpoints.
    EndpointMismatch {
        /// The offending transfer.
        transfer: Transfer,
    },
    /// The recorded arrival is not `start + transfer_time`.
    WrongArrival {
        /// The offending transfer.
        transfer: Transfer,
        /// What the arrival should have been.
        expected: SimTime,
    },
    /// The sending machine does not hold the item at the start time.
    SourceMissingCopy {
        /// The offending transfer.
        transfer: Transfer,
    },
    /// The transfer conflicts with link windows/reservations or storage.
    ResourceConflict {
        /// The offending transfer.
        transfer: Transfer,
        /// Human-readable conflict description from the ledger.
        reason: String,
    },
    /// A claimed delivery is not explained by any replayed copy.
    UnbackedDelivery {
        /// The claimed delivery.
        delivery: Delivery,
    },
}

impl core::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScheduleViolation::UnknownItem { transfer } => {
                write!(f, "transfer references unknown item: {transfer:?}")
            }
            ScheduleViolation::UnknownLink { transfer } => {
                write!(f, "transfer references unknown link: {transfer:?}")
            }
            ScheduleViolation::EndpointMismatch { transfer } => {
                write!(f, "transfer endpoints do not match its link: {transfer:?}")
            }
            ScheduleViolation::WrongArrival { transfer, expected } => {
                write!(f, "transfer arrival should be {expected}: {transfer:?}")
            }
            ScheduleViolation::SourceMissingCopy { transfer } => {
                write!(f, "sending machine lacks a copy at start: {transfer:?}")
            }
            ScheduleViolation::ResourceConflict { transfer, reason } => {
                write!(f, "resource conflict ({reason}): {transfer:?}")
            }
            ScheduleViolation::UnbackedDelivery { delivery } => {
                write!(f, "claimed delivery not backed by any transfer: {delivery:?}")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_model::data::{DataItem, DataSource};
    use dstage_model::link::VirtualLink;
    use dstage_model::machine::Machine;
    use dstage_model::network::NetworkBuilder;
    use dstage_model::request::{Priority, Request};
    use dstage_model::units::{BitsPerSec, Bytes};

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// 0 -> 1 -> 2 line; item of 10_000 bytes at machine 0; requests at 1
    /// and 2. Links run 1 byte/ms.
    fn scenario() -> Scenario {
        let mut b = NetworkBuilder::new();
        for i in 0..3 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        b.add_link(VirtualLink::new(
            m(1),
            m(2),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        Scenario::builder(b.build())
            .add_item(DataItem::new("d0", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_request(Request::new(DataItemId::new(0), m(1), t(60), Priority::HIGH))
            .add_request(Request::new(DataItemId::new(0), m(2), t(60), Priority::LOW))
            .build()
            .unwrap()
    }

    fn good_transfers() -> Vec<Transfer> {
        vec![
            Transfer {
                item: DataItemId::new(0),
                from: m(0),
                to: m(1),
                link: VirtualLinkId::new(0),
                start: t(0),
                arrival: t(10),
            },
            Transfer {
                item: DataItemId::new(0),
                from: m(1),
                to: m(2),
                link: VirtualLinkId::new(1),
                start: t(10),
                arrival: t(20),
            },
        ]
    }

    #[test]
    fn valid_schedule_replays_and_derives_deliveries() {
        let s = scenario();
        let schedule = Schedule::from_parts(
            good_transfers(),
            vec![
                Delivery { request: RequestId::new(0), at: t(10), hops: 1 },
                Delivery { request: RequestId::new(1), at: t(20), hops: 2 },
            ],
        );
        let derived = schedule.validate(&s).unwrap();
        assert_eq!(derived.len(), 2);
        assert_eq!(derived[0].at, t(10));
        assert_eq!(derived[1].at, t(20));
    }

    #[test]
    fn evaluation_counts_weighted_sum() {
        let s = scenario();
        let schedule = Schedule::from_parts(
            good_transfers(),
            vec![
                Delivery { request: RequestId::new(0), at: t(10), hops: 1 },
                Delivery { request: RequestId::new(1), at: t(20), hops: 2 },
            ],
        );
        let w = PriorityWeights::paper_1_10_100();
        let e = schedule.evaluate(&s, &w);
        assert_eq!(e.weighted_sum, 101); // HIGH=100 + LOW=1
        assert_eq!(e.satisfied_count, 2);
        assert_eq!(e.request_count, 2);
        assert_eq!(e.satisfied_by_priority, vec![1, 0, 1]);
        assert_eq!(e.total_by_priority, vec![1, 0, 1]);
        assert!((e.mean_hops_per_delivery - 1.5).abs() < 1e-12);
        assert!((e.satisfaction_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluation_of_empty_schedule() {
        let s = scenario();
        let schedule = Schedule::default();
        let e = schedule.evaluate(&s, &PriorityWeights::paper_1_5_10());
        assert_eq!(e.weighted_sum, 0);
        assert_eq!(e.satisfied_count, 0);
        assert_eq!(e.satisfaction_rate(), 0.0);
        assert_eq!(e.mean_hops_per_delivery, 0.0);
    }

    #[test]
    fn validate_rejects_missing_source_copy() {
        let s = scenario();
        // Second hop without the first: machine 1 never gets a copy.
        let schedule = Schedule::from_parts(vec![good_transfers()[1]], vec![]);
        let err = schedule.validate(&s).unwrap_err();
        assert!(matches!(err, ScheduleViolation::SourceMissingCopy { .. }));
    }

    #[test]
    fn validate_rejects_premature_start() {
        let s = scenario();
        let mut transfers = good_transfers();
        transfers[1].start = t(5); // item arrives at m1 only at t=10
        transfers[1].arrival = t(15);
        let schedule = Schedule::from_parts(transfers, vec![]);
        let err = schedule.validate(&s).unwrap_err();
        assert!(matches!(err, ScheduleViolation::SourceMissingCopy { .. }));
    }

    #[test]
    fn validate_rejects_wrong_arrival() {
        let s = scenario();
        let mut transfers = good_transfers();
        transfers[0].arrival = t(9);
        let schedule = Schedule::from_parts(transfers, vec![]);
        let err = schedule.validate(&s).unwrap_err();
        assert!(matches!(err, ScheduleViolation::WrongArrival { .. }));
    }

    #[test]
    fn validate_rejects_link_overlap() {
        let s = scenario();
        let mut transfers = good_transfers();
        // Duplicate the first transfer shifted to overlap on the same link.
        transfers.push(Transfer { start: t(5), arrival: t(15), ..transfers[0] });
        let schedule = Schedule::from_parts(transfers, vec![]);
        let err = schedule.validate(&s).unwrap_err();
        assert!(matches!(err, ScheduleViolation::ResourceConflict { .. }));
    }

    #[test]
    fn validate_rejects_endpoint_mismatch() {
        let s = scenario();
        let mut transfers = good_transfers();
        transfers[0].to = m(2); // link 0 goes to m1
        let schedule = Schedule::from_parts(transfers, vec![]);
        let err = schedule.validate(&s).unwrap_err();
        assert!(matches!(err, ScheduleViolation::EndpointMismatch { .. }));
    }

    #[test]
    fn validate_rejects_unbacked_delivery() {
        let s = scenario();
        // Claim a delivery at m2 with no transfers at all.
        let schedule = Schedule::from_parts(
            vec![],
            vec![Delivery { request: RequestId::new(1), at: t(20), hops: 2 }],
        );
        let err = schedule.validate(&s).unwrap_err();
        assert!(matches!(err, ScheduleViolation::UnbackedDelivery { .. }));
    }

    #[test]
    fn validate_ignores_late_copies_for_deliveries() {
        // Deadline 60 s; make the second hop arrive after it.
        let mut b = NetworkBuilder::new();
        for i in 0..3 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
        }
        b.add_link(VirtualLink::new(
            m(0),
            m(1),
            t(0),
            SimTime::from_hours(2),
            BitsPerSec::new(8_000),
        ));
        b.add_link(VirtualLink::new(m(1), m(2), t(0), SimTime::from_hours(2), BitsPerSec::new(80)));
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new("d0", Bytes::new(10_000), vec![DataSource::new(m(0), t(0))]))
            .add_request(Request::new(DataItemId::new(0), m(2), t(60), Priority::LOW))
            .build()
            .unwrap();
        // Second hop takes 1000 s: arrives way past the 60 s deadline.
        let schedule = Schedule::from_parts(
            vec![
                Transfer {
                    item: DataItemId::new(0),
                    from: m(0),
                    to: m(1),
                    link: VirtualLinkId::new(0),
                    start: t(0),
                    arrival: t(10),
                },
                Transfer {
                    item: DataItemId::new(0),
                    from: m(1),
                    to: m(2),
                    link: VirtualLinkId::new(1),
                    start: t(10),
                    arrival: t(1010),
                },
            ],
            vec![],
        );
        let derived = schedule.validate(&s).unwrap();
        assert!(derived.is_empty(), "late arrival must not count as delivery");
    }

    #[test]
    fn delivery_lookup() {
        let schedule = Schedule::from_parts(
            vec![],
            vec![Delivery { request: RequestId::new(3), at: t(1), hops: 1 }],
        );
        assert!(schedule.delivery_of(RequestId::new(3)).is_some());
        assert!(schedule.delivery_of(RequestId::new(4)).is_none());
    }
}
