//! The rapidly-close-to-deadline heuristic (`rcd`, extension).
//!
//! Instead of running the cost competition, each iteration picks the
//! candidate step whose tightest satisfiable destination has the least
//! deadline slack (`deadline − A_T`) and commits that destination's full
//! path. Near-deadline work is placed while it is still feasible; loose
//! requests wait, absorbing whatever capacity is left. The cost criterion
//! and E-U weights of the shared configuration are ignored — slack *is*
//! the criterion.

use dstage_model::ids::RequestId;
use dstage_model::time::SimDuration;

use crate::heuristic::HeuristicConfig;
use crate::state::SchedulerState;

/// Drives the rapidly-close-to-deadline main loop to completion.
pub(crate) fn drive(state: &mut SchedulerState<'_>, _config: &HeuristicConfig) {
    loop {
        let steps = state.all_candidate_steps();
        let scenario = state.scenario();
        // The (slack, request) winner per step, then the global minimum.
        // Ties keep enumeration order (items by id, steps by receiving
        // machine then link), matching the other heuristics' determinism.
        let mut best: Option<(SimDuration, RequestId)> = None;
        for step in &steps {
            for d in step.satisfiable() {
                let deadline = scenario.request(d.request).deadline();
                let slack = deadline.saturating_since(d.arrival);
                // Strictly-tighter only: equal slack keeps the earlier
                // enumerated step/destination.
                if best.is_none_or(|(s, _)| slack < s) {
                    best = Some((slack, d.request));
                }
            }
        }
        let Some((_, request)) = best else { break };
        state.note_iteration();
        let machine = scenario.request(request).destination();
        let item = scenario.request(request).item();
        state.commit_path(item, machine);
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::{CostCriterion, EuWeights};
    use crate::heuristic::{run, Heuristic, HeuristicConfig};
    use dstage_model::request::PriorityWeights;
    use dstage_workload::small::{contended_link, fan_out, two_hop_chain};

    fn config() -> HeuristicConfig {
        HeuristicConfig {
            criterion: CostCriterion::C4,
            eu: EuWeights::from_log10_ratio(0.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }

    #[test]
    fn satisfies_everything_on_an_uncontended_chain() {
        let s = two_hop_chain();
        let out = run(&s, Heuristic::Rcd, &config());
        let derived = out.schedule.validate(&s).unwrap();
        assert_eq!(derived.len(), s.request_count());
    }

    #[test]
    fn tightest_deadline_is_served_first() {
        let s = fan_out();
        let out = run(&s, Heuristic::Rcd, &config());
        out.schedule.validate(&s).unwrap();
        // The request with the least slack must be delivered (it was
        // placed before anything could crowd it out).
        let tightest = s
            .requests()
            .min_by_key(|(_, r)| r.deadline())
            .map(|(id, _)| id)
            .expect("scenario has requests");
        assert!(out.schedule.delivery_of(tightest).is_some());
    }

    #[test]
    fn deterministic_across_runs() {
        let s = contended_link();
        let a = run(&s, Heuristic::Rcd, &config());
        let b = run(&s, Heuristic::Rcd, &config());
        assert_eq!(a.schedule, b.schedule);
    }
}
