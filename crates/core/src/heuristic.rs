//! Heuristic selection machinery shared by the three schedulers.
//!
//! Each iteration, every heuristic (1) enumerates the candidate next
//! communication steps across all items, (2) scores them with the active
//! cost criterion, and (3) commits some portion of the winning step's
//! shortest path. This module implements (1)–(2); the per-heuristic
//! modules implement (3).

use serde::{Deserialize, Serialize};

use dstage_model::ids::RequestId;
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;

use crate::cost::{cost_c1, step_cost, CostCriterion, DestinationCost, EuWeights};
use crate::metrics::RunMetrics;
use crate::schedule::Schedule;
use crate::state::{CandidateStep, SchedulerState};

/// Configuration shared by the heuristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicConfig {
    /// Which of the four cost criteria scores candidate steps.
    pub criterion: CostCriterion,
    /// The `W_E`/`W_U` weights (ignored by C3).
    pub eu: EuWeights,
    /// The priority weighting `W[0..=P]`.
    pub priority_weights: PriorityWeights,
    /// Whether unchanged shortest-path trees may be reused between
    /// iterations (an exact optimization; disable only for the ablation).
    pub caching: bool,
}

impl HeuristicConfig {
    /// A configuration with the paper's best pairing: `Cost₄`, E-U ratio
    /// `10^0 = 1`, and the 1/10/100 priority weighting.
    #[must_use]
    pub fn paper_best() -> Self {
        HeuristicConfig {
            criterion: CostCriterion::C4,
            eu: EuWeights::from_log10_ratio(0.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }
}

/// The three data staging heuristics of §4.5–4.7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Heuristic {
    /// §4.5: schedule one hop of the single most important request, then
    /// re-plan.
    PartialPath,
    /// §4.6: schedule the whole path of the winning step's chosen
    /// destination, then re-plan.
    FullPathOneDestination,
    /// §4.7: schedule the paths to *all* satisfiable destinations sharing
    /// the winning step's next machine, then re-plan.
    FullPathAllDestinations,
    /// Extension (DDCCast): as-late-as-possible placement — commit the
    /// winning destination's path against the *latest* feasible gaps
    /// before its deadline, preserving early capacity headroom.
    Alap,
    /// Extension (RCD): rapidly-close-to-deadline admission — commit the
    /// candidate step whose tightest destination has the least deadline
    /// slack, so near-deadline work is placed first.
    Rcd,
}

impl Heuristic {
    /// The paper's three heuristics, in paper order.
    pub const ALL: [Heuristic; 3] = [
        Heuristic::PartialPath,
        Heuristic::FullPathOneDestination,
        Heuristic::FullPathAllDestinations,
    ];

    /// The paper's three heuristics plus the deadline-headroom
    /// extensions, in figure order.
    pub const EXTENDED: [Heuristic; 5] = [
        Heuristic::PartialPath,
        Heuristic::FullPathOneDestination,
        Heuristic::FullPathAllDestinations,
        Heuristic::Alap,
        Heuristic::Rcd,
    ];

    /// The figure label used in the paper ("partial", "full_one",
    /// "full_all") or the extension name ("alap", "rcd").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Heuristic::PartialPath => "partial",
            Heuristic::FullPathOneDestination => "full_one",
            Heuristic::FullPathAllDestinations => "full_all",
            Heuristic::Alap => "alap",
            Heuristic::Rcd => "rcd",
        }
    }

    /// Parses a scheduler name as printed by [`Heuristic::label`].
    /// Hyphenated spellings of the underscore labels are accepted too.
    #[must_use]
    pub fn from_label(name: &str) -> Option<Heuristic> {
        Heuristic::EXTENDED
            .into_iter()
            .find(|h| h.label() == name || h.label().replace('_', "-") == name)
    }

    /// The cost criteria applicable to this heuristic (C1 does not apply
    /// to full path/all destinations).
    #[must_use]
    pub fn criteria(self) -> &'static [CostCriterion] {
        match self {
            Heuristic::FullPathAllDestinations => &CostCriterion::MULTI_DESTINATION,
            _ => &CostCriterion::ALL,
        }
    }
}

impl core::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The result of one scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// The committed transfers and resulting deliveries.
    pub schedule: Schedule,
    /// Execution counters.
    pub metrics: RunMetrics,
}

/// Runs the chosen heuristic on a scenario.
///
/// # Panics
///
/// Panics if `heuristic` is [`Heuristic::FullPathAllDestinations`] and
/// `config.criterion` is [`CostCriterion::C1`]: that pairing "did not make
/// sense and was not examined" (§6) because C1 cannot express sending one
/// item to several destinations.
///
/// # Examples
///
/// ```
/// use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
/// use dstage_workload::small::two_hop_chain;
///
/// let scenario = two_hop_chain();
/// let outcome = run(&scenario, Heuristic::FullPathOneDestination,
///     &HeuristicConfig::paper_best());
/// assert!(outcome.schedule.deliveries().len() > 0);
/// ```
#[must_use]
pub fn run(scenario: &Scenario, heuristic: Heuristic, config: &HeuristicConfig) -> ScheduleOutcome {
    assert!(
        !(heuristic == Heuristic::FullPathAllDestinations && config.criterion == CostCriterion::C1),
        "the full path/all destinations heuristic cannot use Cost1 (paper §6)"
    );
    let started = std::time::Instant::now();
    let mut state = SchedulerState::with_caching(scenario, config.caching);
    drive_state(&mut state, heuristic, config);
    state.set_elapsed(started.elapsed());
    let (schedule, metrics) = state.into_outcome();
    ScheduleOutcome { schedule, metrics }
}

/// Drives the chosen heuristic's main loop on an already-prepared
/// [`SchedulerState`] until no request can make further progress.
///
/// This is the advanced entry point used by the dynamic (online) layer,
/// which first replays kept transfers, applies outages, and deactivates
/// unreleased requests; most callers want [`run`].
///
/// # Panics
///
/// Panics on the [`Heuristic::FullPathAllDestinations`] +
/// [`CostCriterion::C1`] pairing, as for [`run`].
pub fn drive_state(state: &mut SchedulerState<'_>, heuristic: Heuristic, config: &HeuristicConfig) {
    assert!(
        !(heuristic == Heuristic::FullPathAllDestinations && config.criterion == CostCriterion::C1),
        "the full path/all destinations heuristic cannot use Cost1 (paper §6)"
    );
    match heuristic {
        Heuristic::PartialPath => crate::partial::drive(state, config),
        Heuristic::FullPathOneDestination => crate::full_one::drive(state, config),
        Heuristic::FullPathAllDestinations => crate::full_all::drive(state, config),
        Heuristic::Alap => crate::alap::drive(state, config),
        Heuristic::Rcd => crate::rcd::drive(state, config),
    }
}

/// The winning candidate of one selection round.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    /// The winning step.
    pub step: CandidateStep,
    /// For C1 (and for full path/one destination): the specific
    /// destination the cost named.
    pub destination: Option<RequestId>,
    /// The winning cost value.
    #[allow(dead_code)] // read by tests and debugging
    pub cost: f64,
}

/// Scores all candidate steps and returns the minimum-cost choice, or
/// `None` when no request can make progress (termination condition for
/// every heuristic).
///
/// Ties keep the first candidate in enumeration order (items by id, steps
/// by receiving machine then link, destinations by request id), so runs
/// are deterministic.
pub(crate) fn best_choice(
    state: &mut SchedulerState<'_>,
    config: &HeuristicConfig,
) -> Option<Choice> {
    let steps = state.all_candidate_steps();
    let scenario = state.scenario();
    let mut best: Option<Choice> = None;
    let mut consider = |cost: f64, step: &CandidateStep, destination: Option<RequestId>| {
        let better = match &best {
            None => true,
            Some(b) => cost < b.cost,
        };
        if better {
            best = Some(Choice { step: step.clone(), destination, cost });
        }
    };
    for step in &steps {
        let outlooks = destination_costs(scenario, &config.priority_weights, step);
        if config.criterion == CostCriterion::C1 {
            for (req, dc) in &outlooks {
                if dc.satisfiable {
                    consider(cost_c1(config.eu, *dc), step, Some(*req));
                }
            }
        } else {
            let dcs: Vec<DestinationCost> = outlooks.iter().map(|(_, dc)| *dc).collect();
            let cost = step_cost(config.criterion, config.eu, &dcs);
            consider(cost, step, None);
        }
    }
    best
}

/// Picks the "lowest cost destination" (§4.6) a `full path/one
/// destination` commit should target when the criterion does not name one.
///
/// For C2/C4 the per-destination cost is the C1 form
/// `−W_E·Efp − W_U·Urgency` under the same weights; for C3 it is the
/// criterion's own per-destination term `Efp / Urgency`. Ties go to the
/// lowest request id. Only satisfiable destinations are considered.
pub(crate) fn lowest_cost_destination(
    scenario: &Scenario,
    config: &HeuristicConfig,
    step: &CandidateStep,
) -> Option<RequestId> {
    destination_costs(scenario, &config.priority_weights, step)
        .into_iter()
        .filter(|(_, dc)| dc.satisfiable)
        .min_by(|(ra, a), (rb, b)| {
            let cost = |dc: &DestinationCost| match config.criterion {
                CostCriterion::C3 => {
                    dc.effective_priority / dc.urgency.min(-crate::cost::C3_URGENCY_EPSILON_SECS)
                }
                CostCriterion::C3Floor => {
                    dc.effective_priority / dc.urgency.min(-crate::cost::C3_FLOOR_SECS)
                }
                _ => cost_c1(config.eu, *dc),
            };
            cost(a).partial_cmp(&cost(b)).expect("costs are finite").then(ra.cmp(rb))
            // lower request id wins ties
        })
        .map(|(r, _)| r)
}

/// The per-destination cost ingredients of a step, in request-id order.
pub(crate) fn destination_costs(
    scenario: &Scenario,
    weights: &PriorityWeights,
    step: &CandidateStep,
) -> Vec<(RequestId, DestinationCost)> {
    let mut v: Vec<(RequestId, DestinationCost)> = step
        .destinations
        .iter()
        .map(|d| {
            let req = scenario.request(d.request);
            (
                d.request,
                DestinationCost::new(d.arrival, req.deadline(), weights.weight(req.priority())),
            )
        })
        .collect();
    v.sort_by_key(|(r, _)| *r);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EuWeights;
    use crate::state::SchedulerState;
    use dstage_model::ids::RequestId;
    use dstage_workload::small::{contended_link, fan_out};

    fn config(criterion: CostCriterion, x: f64) -> HeuristicConfig {
        HeuristicConfig {
            criterion,
            eu: EuWeights::from_log10_ratio(x),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }

    #[test]
    fn best_choice_picks_the_high_priority_request_under_contention() {
        let s = contended_link();
        let mut state = SchedulerState::new(&s);
        // At a priority-dominant ratio, the high-priority item (item 0,
        // request 0) must win the contended link under every criterion.
        for criterion in CostCriterion::ALL {
            let choice = best_choice(&mut state, &config(criterion, 3.0)).expect("steps exist");
            assert_eq!(
                choice.step.item,
                dstage_model::ids::DataItemId::new(0),
                "criterion {criterion} picked the wrong item"
            );
            if criterion == CostCriterion::C1 {
                assert_eq!(choice.destination, Some(RequestId::new(0)));
            }
        }
    }

    #[test]
    fn best_choice_returns_none_when_nothing_is_satisfiable() {
        let s = dstage_workload::small::impossible_request();
        let mut state = SchedulerState::new(&s);
        // Deliver the easy request, leaving only the impossible one.
        state.commit_path(
            dstage_model::ids::DataItemId::new(1),
            s.request(RequestId::new(1)).destination(),
        );
        assert!(best_choice(&mut state, &config(CostCriterion::C4, 0.0)).is_none());
    }

    #[test]
    fn lowest_cost_destination_respects_priority_at_high_ratio() {
        let s = fan_out();
        let mut state = SchedulerState::new(&s);
        let cfg = config(CostCriterion::C4, 4.0);
        let choice = best_choice(&mut state, &cfg).unwrap();
        // The winning step fans out to three destinations of item 0; at a
        // priority-dominant ratio the HIGH one (request 0) is chosen.
        let dest = lowest_cost_destination(&s, &cfg, &choice.step).unwrap();
        assert_eq!(dest, RequestId::new(0));
    }

    #[test]
    fn lowest_cost_destination_trades_priority_against_urgency() {
        use dstage_model::prelude::*;
        // One item fans out to two destinations: `a` is high priority with
        // a loose deadline, `b` is low priority with a tight one. The
        // priority-dominant ratio must pick `a`; the urgency-dominant one
        // must pick `b`.
        let mut b = NetworkBuilder::new();
        let src = b.add_machine(Machine::new("src", Bytes::from_mib(4)));
        let hub = b.add_machine(Machine::new("hub", Bytes::from_mib(4)));
        let da = b.add_machine(Machine::new("a", Bytes::from_mib(4)));
        let db = b.add_machine(Machine::new("b", Bytes::from_mib(4)));
        let horizon = SimTime::from_hours(2);
        for (x, y) in [(src, hub), (hub, da), (hub, db)] {
            b.add_link(VirtualLink::new(x, y, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
        }
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new(
                "d",
                Bytes::new(10_000),
                vec![DataSource::new(src, SimTime::ZERO)],
            ))
            .add_request(Request::new(
                DataItemId::new(0),
                da,
                SimTime::from_mins(60),
                Priority::HIGH,
            ))
            .add_request(Request::new(DataItemId::new(0), db, SimTime::from_mins(5), Priority::LOW))
            .build()
            .unwrap();
        let mut state = SchedulerState::new(&s);
        let steps = state.candidate_steps(dstage_model::ids::DataItemId::new(0));
        let step = &steps[0];
        assert_eq!(step.destinations.len(), 2);
        let priority_pick =
            lowest_cost_destination(&s, &config(CostCriterion::C4, 4.0), step).unwrap();
        assert_eq!(priority_pick, RequestId::new(0), "priority-dominant picks the high request");
        let urgency_pick =
            lowest_cost_destination(&s, &config(CostCriterion::C4, -3.0), step).unwrap();
        assert_eq!(urgency_pick, RequestId::new(1), "urgency-dominant picks the tight deadline");
    }

    #[test]
    fn drive_state_resumes_partially_scheduled_state() {
        let s = fan_out();
        let mut state = SchedulerState::new(&s);
        state.commit_path(
            dstage_model::ids::DataItemId::new(0),
            s.request(RequestId::new(0)).destination(),
        );
        drive_state(&mut state, Heuristic::FullPathOneDestination, &config(CostCriterion::C4, 0.0));
        let (schedule, _) = state.into_outcome();
        // Everything satisfiable ends satisfied even from a partial start.
        assert_eq!(schedule.deliveries().len(), s.request_count());
        schedule.validate(&s).unwrap();
    }

    #[test]
    fn heuristic_labels_match_figures() {
        assert_eq!(Heuristic::PartialPath.to_string(), "partial");
        assert_eq!(Heuristic::FullPathOneDestination.to_string(), "full_one");
        assert_eq!(Heuristic::FullPathAllDestinations.to_string(), "full_all");
        assert_eq!(Heuristic::Alap.to_string(), "alap");
        assert_eq!(Heuristic::Rcd.to_string(), "rcd");
    }

    #[test]
    fn from_label_round_trips_and_accepts_hyphens() {
        for h in Heuristic::EXTENDED {
            assert_eq!(Heuristic::from_label(h.label()), Some(h));
        }
        assert_eq!(Heuristic::from_label("full-one"), Some(Heuristic::FullPathOneDestination));
        assert_eq!(Heuristic::from_label("full-all"), Some(Heuristic::FullPathAllDestinations));
        assert_eq!(Heuristic::from_label("fastest"), None);
        assert_eq!(Heuristic::from_label(""), None);
    }

    #[test]
    fn criteria_sets_per_heuristic() {
        assert_eq!(Heuristic::PartialPath.criteria().len(), 4);
        assert_eq!(Heuristic::FullPathOneDestination.criteria().len(), 4);
        let fa = Heuristic::FullPathAllDestinations.criteria();
        assert_eq!(fa.len(), 3);
        assert!(!fa.contains(&CostCriterion::C1));
    }

    #[test]
    fn paper_best_config() {
        let c = HeuristicConfig::paper_best();
        assert_eq!(c.criterion, CostCriterion::C4);
        assert_eq!(c.priority_weights.weight(dstage_model::request::Priority::HIGH), 100);
        assert!(c.caching);
    }
}
