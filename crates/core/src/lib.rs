//! Data staging scheduling heuristics (ICDCS 2000 reproduction).
//!
//! Implements the three multiple-source shortest-path based heuristics of
//! Theys, Tan, Beck, Siegel & Jurczyk — *partial path*, *full path/one
//! destination*, *full path/all destinations* — together with the four
//! cost criteria (`Cost₁`–`Cost₄`), the random lower-bound procedures, the
//! `upper_bound`/`possible_satisfy` bounds, and the priority-first
//! comparison scheme of the paper's evaluation.
//!
//! # Examples
//!
//! Run the paper's best pairing on a toy scenario:
//!
//! ```
//! use dstage_core::prelude::*;
//! use dstage_workload::small::two_hop_chain;
//!
//! let scenario = two_hop_chain();
//! let outcome = run(&scenario, Heuristic::FullPathOneDestination,
//!     &HeuristicConfig::paper_best());
//! let eval = outcome.schedule.evaluate(&scenario,
//!     &PriorityWeights::paper_1_10_100());
//! assert!(eval.weighted_sum > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alap;
pub mod baselines;
pub mod bounds;
pub mod cost;
pub mod exact;
mod full_all;
mod full_one;
pub mod heuristic;
pub mod metrics;
mod partial;
mod rcd;
pub mod schedule;
pub mod state;

/// Convenience re-exports of the scheduling vocabulary.
pub mod prelude {
    pub use crate::baselines::{priority_first, random_dijkstra, single_dijkstra_random};
    pub use crate::bounds::{possible_satisfy, upper_bound, PossibleSatisfy};
    pub use crate::cost::{CostCriterion, EuWeights};
    pub use crate::exact::{best_order_schedule, ExactOutcome};
    pub use crate::heuristic::{run, Heuristic, HeuristicConfig, ScheduleOutcome};
    pub use crate::metrics::RunMetrics;
    pub use crate::schedule::{Delivery, Evaluation, Schedule, ScheduleViolation, Transfer};
    pub use crate::state::SchedulerState;
    pub use dstage_model::request::PriorityWeights;
}
