//! The full path/one destination heuristic (§4.6).
//!
//! The partial path heuristic tends to reselect the same request hop after
//! hop; worse, a partial path that later gets blocked has consumed
//! resources other items needed. This heuristic exploits/avoids both: once
//! a step wins the cost competition, **every hop** of the item's current
//! shortest path to the step's chosen destination is committed before the
//! search runs again.
//!
//! For `Cost₁` the winning destination is named by the cost itself; for
//! the per-step criteria (C2–C4) the most urgent satisfiable destination
//! of the winning step is scheduled (its "lowest cost destination").

use crate::heuristic::{best_choice, lowest_cost_destination, HeuristicConfig};
use crate::state::SchedulerState;

/// Drives the full path/one destination main loop to completion.
pub(crate) fn drive(state: &mut SchedulerState<'_>, config: &HeuristicConfig) {
    while let Some(choice) = best_choice(state, config) {
        state.note_iteration();
        let destination = choice
            .destination
            .or_else(|| lowest_cost_destination(state.scenario(), config, &choice.step));
        let Some(request) = destination else {
            // Unreachable: steps always contain a satisfiable destination.
            debug_assert!(false, "winning step had no satisfiable destination");
            break;
        };
        let machine = state.scenario().request(request).destination();
        state.commit_path(choice.step.item, machine);
    }
}

#[cfg(test)]
mod tests {
    use crate::cost::{CostCriterion, EuWeights};
    use crate::heuristic::{run, Heuristic, HeuristicConfig};
    use dstage_model::ids::RequestId;
    use dstage_model::request::PriorityWeights;
    use dstage_workload::small::{contended_link, fan_out, two_hop_chain};

    fn config(criterion: CostCriterion) -> HeuristicConfig {
        HeuristicConfig {
            criterion,
            eu: EuWeights::from_log10_ratio(0.0),
            priority_weights: PriorityWeights::paper_1_10_100(),
            caching: true,
        }
    }

    #[test]
    fn satisfies_everything_on_an_uncontended_chain() {
        let s = two_hop_chain();
        for criterion in CostCriterion::ALL {
            let out = run(&s, Heuristic::FullPathOneDestination, &config(criterion));
            let derived = out.schedule.validate(&s).unwrap();
            assert_eq!(derived.len(), s.request_count(), "criterion {criterion}");
        }
    }

    #[test]
    fn fewer_iterations_than_partial() {
        let s = fan_out();
        let full = run(&s, Heuristic::FullPathOneDestination, &config(CostCriterion::C4));
        let partial = run(&s, Heuristic::PartialPath, &config(CostCriterion::C4));
        assert!(full.metrics.iterations <= partial.metrics.iterations);
        // Same satisfied set on this easy scenario.
        assert_eq!(full.schedule.deliveries().len(), partial.schedule.deliveries().len());
    }

    #[test]
    fn high_priority_request_wins_contention() {
        let s = contended_link();
        let out = run(&s, Heuristic::FullPathOneDestination, &config(CostCriterion::C4));
        out.schedule.validate(&s).unwrap();
        assert!(out.schedule.delivery_of(RequestId::new(0)).is_some());
    }

    #[test]
    fn whole_path_committed_per_iteration() {
        let s = two_hop_chain();
        let out = run(&s, Heuristic::FullPathOneDestination, &config(CostCriterion::C4));
        // The chain scenario needs multi-hop paths; with full paths the
        // number of iterations is the number of scheduled destinations,
        // not the number of transfers.
        assert!(out.metrics.iterations < out.metrics.transfers_committed);
    }

    #[test]
    fn deterministic_across_runs() {
        let s = contended_link();
        let a = run(&s, Heuristic::FullPathOneDestination, &config(CostCriterion::C1));
        let b = run(&s, Heuristic::FullPathOneDestination, &config(CostCriterion::C1));
        assert_eq!(a.schedule, b.schedule);
    }
}
