//! Upper bounds on achievable performance (§5.2).
//!
//! * [`upper_bound`] — the *loose* bound: the total weighted sum of all
//!   requests, as if every request could be satisfied.
//! * [`possible_satisfy`] — the tighter bound: the weighted sum over
//!   requests that could be satisfied *if each were the only request in
//!   the system* (some requests fail even alone, for lack of bandwidth or
//!   storage).

use dstage_model::ids::RequestId;
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;
use dstage_model::time::SimTime;
use dstage_path::{earliest_arrival_tree, ItemQuery};
use dstage_resources::ledger::NetworkLedger;

/// The loose upper bound: Σ `W[Priority[j,k]]` over **all** requests.
#[must_use]
pub fn upper_bound(scenario: &Scenario, weights: &PriorityWeights) -> u64 {
    scenario.requests().map(|(_, r)| weights.weight(r.priority())).sum()
}

/// The result of the alone-in-the-system analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossibleSatisfy {
    /// Σ weights over the individually satisfiable requests.
    pub weighted_sum: u64,
    /// The requests satisfiable when alone in the system.
    pub satisfiable: Vec<RequestId>,
}

/// The tighter upper bound (`possible_satisfy` in Figure 2): for each
/// request, checks whether the item could reach the destination by its
/// deadline on the pristine network, with only that request's staging
/// holds in force.
#[must_use]
pub fn possible_satisfy(scenario: &Scenario, weights: &PriorityWeights) -> PossibleSatisfy {
    let network = scenario.network();
    let m = network.machine_count();
    // Pristine ledger: only the initial source copies are placed.
    let mut ledger = NetworkLedger::new(network);
    for (_, item) in scenario.items() {
        for src in item.sources() {
            ledger.force_storage(src.machine, item.size(), src.available_at, scenario.horizon());
        }
    }

    let mut satisfiable = Vec::new();
    let mut weighted_sum = 0u64;
    for (req_id, req) in scenario.requests() {
        let item = scenario.item(req.item());
        let sources: Vec<_> = item.sources().iter().map(|s| (s.machine, s.available_at)).collect();
        // Alone in the system, the item's GC clock runs off this single
        // request's deadline.
        let gc: SimTime = (req.deadline() + scenario.gc_delay()).min(scenario.horizon());
        let mut hold = vec![gc; m];
        hold[req.destination().index()] = scenario.horizon();
        let tree = earliest_arrival_tree(&ItemQuery {
            network,
            ledger: &ledger,
            size: item.size(),
            sources: &sources,
            hold_until: &hold,
            horizon: scenario.horizon(),
        });
        if tree.arrival(req.destination()) <= req.deadline() {
            satisfiable.push(req_id);
            weighted_sum += weights.weight(req.priority());
        }
    }
    PossibleSatisfy { weighted_sum, satisfiable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_workload::small::{contended_link, impossible_request, two_hop_chain};

    #[test]
    fn upper_bound_sums_all_weights() {
        let s = two_hop_chain();
        let w = PriorityWeights::paper_1_10_100();
        let expected: u64 = s.requests().map(|(_, r)| w.weight(r.priority())).sum();
        assert_eq!(upper_bound(&s, &w), expected);
        assert!(expected > 0);
    }

    #[test]
    fn possible_satisfy_accepts_feasible_chain() {
        let s = two_hop_chain();
        let w = PriorityWeights::paper_1_10_100();
        let ps = possible_satisfy(&s, &w);
        assert_eq!(ps.satisfiable.len(), s.request_count());
        assert_eq!(ps.weighted_sum, upper_bound(&s, &w));
    }

    #[test]
    fn possible_satisfy_excludes_impossible_requests() {
        let s = impossible_request();
        let w = PriorityWeights::paper_1_10_100();
        let ps = possible_satisfy(&s, &w);
        // The scenario contains one request that cannot be satisfied even
        // alone (deadline shorter than the minimum transfer time) and one
        // that can.
        assert_eq!(ps.satisfiable.len(), s.request_count() - 1);
        assert!(ps.weighted_sum < upper_bound(&s, &w));
    }

    #[test]
    fn possible_satisfy_ignores_contention() {
        // Under contention, each request is still individually fine, so
        // possible_satisfy equals the loose bound even though no schedule
        // achieves it.
        let s = contended_link();
        let w = PriorityWeights::paper_1_10_100();
        let ps = possible_satisfy(&s, &w);
        assert_eq!(ps.weighted_sum, upper_bound(&s, &w));
    }
}
