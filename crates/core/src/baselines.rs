//! Lower-bound scheduling procedures and the priority-first comparison
//! scheme (§5.2, §5.4).
//!
//! * [`single_dijkstra_random`] — the looser lower bound: Dijkstra runs
//!   once per item on the pristine network; the precomputed paths are then
//!   committed in arbitrary (seeded-random) order, dropping any request
//!   whose path no longer fits. Shows that re-running Dijkstra with
//!   updated state is worth its cost.
//! * [`random_dijkstra`] — identical to the partial path heuristic except
//!   the next step is chosen uniformly at random instead of by cost.
//!   Shows the value of the cost criterion itself.
//! * [`priority_first`] — the simplified scheme the paper compares
//!   against in §5.4: all high-priority requests are scheduled (earliest
//!   deadline first) before any medium, and all medium before any low.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dstage_model::ids::{DataItemId, RequestId};
use dstage_model::request::{Priority, PriorityWeights};
use dstage_model::scenario::Scenario;
use dstage_path::Hop;

use crate::heuristic::ScheduleOutcome;
use crate::state::SchedulerState;

/// The looser lower bound: one pristine-network Dijkstra per item, then
/// blind path replay in seeded-random request order.
///
/// # Examples
///
/// ```
/// use dstage_core::baselines::single_dijkstra_random;
/// use dstage_workload::small::two_hop_chain;
///
/// let s = two_hop_chain();
/// let out = single_dijkstra_random(&s, 7);
/// out.schedule.validate(&s).expect("baseline must produce valid schedules");
/// ```
#[must_use]
pub fn single_dijkstra_random(scenario: &Scenario, seed: u64) -> ScheduleOutcome {
    let started = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = SchedulerState::new(scenario);

    // Plan every item's paths on the pristine network.
    let mut planned: Vec<(RequestId, Option<Vec<Hop>>)> = Vec::new();
    for item_id in scenario.item_ids() {
        let tree = state.tree(item_id).clone();
        for &req_id in scenario.requests_for(item_id) {
            let req = scenario.request(req_id);
            let path = tree.path_to(req.destination()).filter(|_| {
                // Requests that miss their deadline even on the pristine
                // network get no resources at all.
                tree.arrival(req.destination()) <= req.deadline()
            });
            planned.push((req_id, path));
        }
    }

    // Commit in arbitrary order; on the first conflict the request is
    // dropped (already-committed hops stay, as in the partial heuristic).
    planned.shuffle(&mut rng);
    for (req_id, path) in planned {
        let Some(path) = path else { continue };
        let item = scenario.request(req_id).item();
        for hop in path {
            state.note_iteration();
            if !state.try_commit_stale_hop(item, hop) {
                break;
            }
        }
    }
    state.set_elapsed(started.elapsed());
    let (schedule, metrics) = state.into_outcome();
    ScheduleOutcome { schedule, metrics }
}

/// The tighter lower bound: the partial path loop with uniformly random
/// step selection instead of a cost criterion.
///
/// # Examples
///
/// ```
/// use dstage_core::baselines::random_dijkstra;
/// use dstage_workload::small::two_hop_chain;
///
/// let s = two_hop_chain();
/// let out = random_dijkstra(&s, 7);
/// out.schedule.validate(&s).expect("baseline must produce valid schedules");
/// ```
#[must_use]
pub fn random_dijkstra(scenario: &Scenario, seed: u64) -> ScheduleOutcome {
    let started = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = SchedulerState::new(scenario);
    loop {
        let steps = state.all_candidate_steps();
        if steps.is_empty() {
            break;
        }
        state.note_iteration();
        let pick = rng.gen_range(0..steps.len());
        let step = &steps[pick];
        state.commit_hop(step.item, step.hop);
    }
    state.set_elapsed(started.elapsed());
    let (schedule, metrics) = state.into_outcome();
    ScheduleOutcome { schedule, metrics }
}

/// The simplified priority-first scheme: classes are processed from the
/// highest priority down; within a class, satisfiable requests are
/// scheduled over their full shortest paths in arbitrary (request-id)
/// order, until the class is exhausted.
///
/// The scheme is "cost-guided (versus arbitrary)" only in that priority
/// classes gate each other — decisions are based *only* on the priority of
/// individual requests (§5.4), with no urgency awareness inside a class.
/// That blindness is exactly what the paper's heuristic/criterion pairs
/// exploit to beat it in all cases, even on highest-priority deliveries.
///
/// # Examples
///
/// ```
/// use dstage_core::baselines::priority_first;
/// use dstage_model::request::PriorityWeights;
/// use dstage_workload::small::two_hop_chain;
///
/// let s = two_hop_chain();
/// let out = priority_first(&s, &PriorityWeights::paper_1_10_100());
/// out.schedule.validate(&s).expect("baseline must produce valid schedules");
/// ```
#[must_use]
pub fn priority_first(scenario: &Scenario, weights: &PriorityWeights) -> ScheduleOutcome {
    let started = std::time::Instant::now();
    let mut state = SchedulerState::new(scenario);
    let mut levels: Vec<Priority> = weights.priorities().collect();
    levels.reverse(); // highest first
    for class in levels {
        loop {
            // Among pending satisfiable destinations of this class, pick
            // the lowest request id — arbitrary order, blind to urgency.
            let steps = state.all_candidate_steps();
            let mut best: Option<(RequestId, DataItemId)> = None;
            for step in &steps {
                for d in step.satisfiable() {
                    let req = scenario.request(d.request);
                    if req.priority() != class {
                        continue;
                    }
                    if best.is_none_or(|(r, _)| d.request < r) {
                        best = Some((d.request, step.item));
                    }
                }
            }
            let Some((req_id, item)) = best else { break };
            state.note_iteration();
            let machine = scenario.request(req_id).destination();
            state.commit_path(item, machine);
        }
    }
    state.set_elapsed(started.elapsed());
    let (schedule, metrics) = state.into_outcome();
    ScheduleOutcome { schedule, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_workload::small::{contended_link, fan_out, two_hop_chain};

    #[test]
    fn single_dijkstra_random_runs_one_dijkstra_per_item() {
        let s = fan_out();
        let out = single_dijkstra_random(&s, 42);
        assert_eq!(out.metrics.dijkstra_runs, s.item_count() as u64);
        out.schedule.validate(&s).unwrap();
    }

    #[test]
    fn single_dijkstra_random_is_seed_deterministic() {
        let s = contended_link();
        let a = single_dijkstra_random(&s, 5);
        let b = single_dijkstra_random(&s, 5);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn random_dijkstra_is_seed_deterministic() {
        let s = contended_link();
        let a = random_dijkstra(&s, 5);
        let b = random_dijkstra(&s, 5);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn random_dijkstra_satisfies_easy_scenarios() {
        let s = two_hop_chain();
        let out = random_dijkstra(&s, 11);
        let derived = out.schedule.validate(&s).unwrap();
        // With no contention every request is eventually satisfied even by
        // random choices (all steps make progress).
        assert_eq!(derived.len(), s.request_count());
    }

    #[test]
    fn priority_first_delivers_high_class_first() {
        let s = contended_link();
        let w = PriorityWeights::paper_1_10_100();
        let out = priority_first(&s, &w);
        out.schedule.validate(&s).unwrap();
        // The high-priority request (id 0) must be satisfied.
        assert!(out.schedule.delivery_of(dstage_model::ids::RequestId::new(0)).is_some());
    }

    #[test]
    fn priority_first_handles_empty_scenarios() {
        // A scenario with no requests terminates immediately.
        let s = dstage_workload::small::no_requests();
        let out = priority_first(&s, &PriorityWeights::paper_1_5_10());
        assert!(out.schedule.transfers().is_empty());
        assert!(out.schedule.deliveries().is_empty());
    }
}
