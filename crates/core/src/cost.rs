//! The four cost criteria of §4.8.
//!
//! Each candidate communication step (transferring item `Rq[i]` from `M[s]`
//! to the next machine `M[r]` over one virtual link) is scored from two
//! ingredients computed per affected destination `j ∈ Drq[i, r]`:
//!
//! * **satisfiability** `Sat[i,r](j)` — 1 iff the current shortest-path
//!   estimate `A_T[i,j]` meets the deadline `Rft[i,j]`;
//! * **effective priority** `Efp = Sat · W[Priority]`;
//! * **urgency** `Urgency = −Sat · (Rft − A_T)` in seconds — negative
//!   slack, so values closer to zero are *more* urgent.
//!
//! The heuristics pick the candidate with the **smallest** cost.

use serde::{Deserialize, Serialize};

use dstage_model::time::SimTime;

/// Urgency floor (seconds) used by [`CostCriterion::C3`] in place of an
/// exactly-zero urgency, avoiding division by zero when a request has zero
/// slack. One millisecond — the model's time quantum.
pub const C3_URGENCY_EPSILON_SECS: f64 = 0.001;

/// Urgency floor (seconds) of the extension criterion
/// [`CostCriterion::C3Floor`]: urgencies tighter than one minute are
/// treated as one minute, so a single near-zero slack cannot dominate the
/// whole sum — the scaling pathology the paper diagnoses in `Cost₃`
/// ("one very small `Urgency[i,j]` may have too much impact on the total
/// cost", §5.4).
pub const C3_FLOOR_SECS: f64 = 60.0;

/// The relative weights `W_E` (effective priority) and `W_U` (urgency).
///
/// The simulation study sweeps the *E-U ratio* `W_E / W_U` over
/// `log10 ∈ {−3 … 5}` plus the two extremes.
///
/// # Examples
///
/// ```
/// use dstage_core::cost::EuWeights;
///
/// let w = EuWeights::from_log10_ratio(2.0);
/// assert!((w.w_e - 100.0).abs() < 1e-9);
/// assert!((w.w_u - 1.0).abs() < 1e-9);
/// assert_eq!(EuWeights::priority_only().w_u, 0.0);
/// assert_eq!(EuWeights::urgency_only().w_e, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EuWeights {
    /// Weight of the effective-priority term (`W_E ≥ 0`).
    pub w_e: f64,
    /// Weight of the urgency term (`W_U ≥ 0`).
    pub w_u: f64,
}

impl EuWeights {
    /// Weights with E-U ratio `10^x` (i.e. `W_U = 1`, `W_E = 10^x`).
    #[must_use]
    pub fn from_log10_ratio(x: f64) -> Self {
        EuWeights { w_e: 10f64.powf(x), w_u: 1.0 }
    }

    /// The `+inf` extreme: only effective priority matters.
    #[must_use]
    pub fn priority_only() -> Self {
        EuWeights { w_e: 1.0, w_u: 0.0 }
    }

    /// The `−inf` extreme: only urgency matters.
    #[must_use]
    pub fn urgency_only() -> Self {
        EuWeights { w_e: 0.0, w_u: 1.0 }
    }

    /// Explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if either weight is negative or not finite.
    #[must_use]
    pub fn new(w_e: f64, w_u: f64) -> Self {
        assert!(w_e.is_finite() && w_e >= 0.0, "W_E must be finite and non-negative");
        assert!(w_u.is_finite() && w_u >= 0.0, "W_U must be finite and non-negative");
        EuWeights { w_e, w_u }
    }
}

/// Which of the paper's four cost functions scores candidate steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCriterion {
    /// `Cost₁ = −W_E·Efp(j) − W_U·Urgency(j)` — scored **per destination**.
    C1,
    /// `Cost₂ = −W_E·ΣEfp − W_U·max Urgency` — per step, with the most
    /// urgent satisfiable destination supplying the urgency term.
    C2,
    /// `Cost₃ = Σ Efp/Urgency` — per step, E-U-ratio independent.
    C3,
    /// `Cost₄ = −W_E·ΣEfp − W_U·ΣUrgency` — per step; the paper's best.
    C4,
    /// **Extension** (not in the paper's twelve pairings): `Cost₃` with
    /// the urgency floored at [`C3_FLOOR_SECS`], implementing the §5.4
    /// suggestion that "future cost criteria might be designed to capture
    /// the original intent" of the ratio criterion without its scaling
    /// pathology. E-U-ratio independent, like `Cost₃`.
    C3Floor,
}

impl CostCriterion {
    /// All four criteria, in paper order.
    pub const ALL: [CostCriterion; 4] =
        [CostCriterion::C1, CostCriterion::C2, CostCriterion::C3, CostCriterion::C4];

    /// The criteria applicable to the full path/all destinations heuristic
    /// (C1 "does not capture the fact that a data item can be sent to
    /// multiple destinations", §4.8).
    pub const MULTI_DESTINATION: [CostCriterion; 3] =
        [CostCriterion::C2, CostCriterion::C3, CostCriterion::C4];

    /// The extension criteria added by this implementation beyond the
    /// paper's four.
    pub const EXTENSIONS: [CostCriterion; 1] = [CostCriterion::C3Floor];

    /// Whether the criterion's value depends on the E-U ratio.
    ///
    /// The ratio criteria divide effective priority by urgency, so
    /// `W_E/W_U` is a common scale factor that never changes the argmin.
    #[must_use]
    pub fn uses_eu_ratio(self) -> bool {
        !matches!(self, CostCriterion::C3 | CostCriterion::C3Floor)
    }

    /// Short label used in reports ("C1" … "C4", "C3f").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CostCriterion::C1 => "C1",
            CostCriterion::C2 => "C2",
            CostCriterion::C3 => "C3",
            CostCriterion::C4 => "C4",
            CostCriterion::C3Floor => "C3f",
        }
    }
}

impl core::fmt::Display for CostCriterion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The per-destination ingredients of every cost function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DestinationCost {
    /// `Sat[i,r](j)`.
    pub satisfiable: bool,
    /// `Efp[i,r](j) = Sat · W[Priority[i,j]]`.
    pub effective_priority: f64,
    /// `Urgency[i,r](j) = −Sat · (Rft − A_T)` in seconds (≤ 0).
    pub urgency: f64,
}

impl DestinationCost {
    /// Computes the ingredients for one destination from its shortest-path
    /// arrival estimate `A_T`, its deadline, and its priority weight.
    #[must_use]
    pub fn new(arrival: SimTime, deadline: SimTime, priority_weight: u64) -> Self {
        let satisfiable = arrival <= deadline && arrival != SimTime::MAX;
        if !satisfiable {
            return DestinationCost { satisfiable: false, effective_priority: 0.0, urgency: 0.0 };
        }
        // Saturating is sound here (audited): `arrival <= deadline` is
        // guaranteed by the guard above, so the subtraction never actually
        // saturates — the slack is exact even at deadline = SimTime::MAX.
        let slack_secs = deadline.saturating_since(arrival).as_secs_f64();
        DestinationCost {
            satisfiable: true,
            effective_priority: priority_weight as f64,
            urgency: -slack_secs,
        }
    }
}

/// Evaluates a *per-step* criterion (C2, C3 or C4) over the destinations
/// in `Drq[i, r]`.
///
/// Destinations with `Sat = 0` contribute nothing (their `Efp` and
/// `Urgency` are zero by definition; C2's max and C3's sum skip them
/// explicitly, matching the paper's "satisfiable" wording).
///
/// # Panics
///
/// Panics if called with [`CostCriterion::C1`]; C1 is scored per
/// destination via [`cost_c1`].
#[must_use]
pub fn step_cost(
    criterion: CostCriterion,
    weights: EuWeights,
    destinations: &[DestinationCost],
) -> f64 {
    let satisfiable = destinations.iter().filter(|d| d.satisfiable);
    match criterion {
        CostCriterion::C1 => panic!("C1 is a per-destination criterion; use cost_c1"),
        CostCriterion::C2 => {
            let efp_sum: f64 = destinations.iter().map(|d| d.effective_priority).sum();
            let max_urgency = satisfiable.map(|d| d.urgency).fold(f64::NEG_INFINITY, f64::max);
            let max_urgency = if max_urgency.is_finite() { max_urgency } else { 0.0 };
            -weights.w_e * efp_sum - weights.w_u * max_urgency
        }
        CostCriterion::C3 => satisfiable
            .map(|d| d.effective_priority / d.urgency.min(-C3_URGENCY_EPSILON_SECS))
            .sum(),
        CostCriterion::C3Floor => {
            satisfiable.map(|d| d.effective_priority / d.urgency.min(-C3_FLOOR_SECS)).sum()
        }
        CostCriterion::C4 => {
            let efp_sum: f64 = destinations.iter().map(|d| d.effective_priority).sum();
            let urgency_sum: f64 = destinations.iter().map(|d| d.urgency).sum();
            -weights.w_e * efp_sum - weights.w_u * urgency_sum
        }
    }
}

/// Evaluates `Cost₁` for a single destination.
#[must_use]
pub fn cost_c1(weights: EuWeights, destination: DestinationCost) -> f64 {
    -weights.w_e * destination.effective_priority - weights.w_u * destination.urgency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn dest(arrival_s: u64, deadline_s: u64, weight: u64) -> DestinationCost {
        DestinationCost::new(t(arrival_s), t(deadline_s), weight)
    }

    #[test]
    fn ingredients_for_satisfiable_destination() {
        let d = dest(10, 40, 100);
        assert!(d.satisfiable);
        assert_eq!(d.effective_priority, 100.0);
        assert_eq!(d.urgency, -30.0);
    }

    #[test]
    fn ingredients_for_missed_deadline_are_zero() {
        let d = dest(50, 40, 100);
        assert!(!d.satisfiable);
        assert_eq!(d.effective_priority, 0.0);
        assert_eq!(d.urgency, 0.0);
    }

    #[test]
    fn ingredients_for_unreachable_are_zero() {
        let d = DestinationCost::new(SimTime::MAX, t(40), 100);
        assert!(!d.satisfiable);
    }

    #[test]
    fn ingredients_near_time_max_stay_exact() {
        // Regression guard for the saturating-subtraction audit: an open
        // deadline (SimTime::MAX) with a finite arrival yields the exact
        // (astronomical but finite) slack, and an unreachable arrival at
        // MAX stays unsatisfiable rather than producing zero urgency by
        // saturation.
        let d = DestinationCost::new(t(10), SimTime::MAX, 100);
        assert!(d.satisfiable);
        let expected = SimTime::MAX.saturating_since(t(10)).as_secs_f64();
        assert_eq!(d.urgency, -expected);
        assert!(d.urgency.is_finite() && d.urgency < 0.0);
        let unreachable = DestinationCost::new(SimTime::MAX, SimTime::MAX, 100);
        assert!(!unreachable.satisfiable);
        assert_eq!(unreachable.urgency, 0.0);
    }

    #[test]
    fn exact_deadline_is_satisfiable_with_zero_urgency() {
        let d = dest(40, 40, 10);
        assert!(d.satisfiable);
        assert_eq!(d.urgency, 0.0);
    }

    #[test]
    fn c1_prefers_higher_priority_and_more_urgent() {
        let w = EuWeights::new(1.0, 1.0);
        let high_tight = dest(10, 15, 100); // efp 100, urgency -5
        let high_loose = dest(10, 100, 100); // efp 100, urgency -90
        let low_tight = dest(10, 15, 1);
        assert!(cost_c1(w, high_tight) < cost_c1(w, high_loose));
        assert!(cost_c1(w, high_tight) < cost_c1(w, low_tight));
        // Numeric check: -(100) - (-5) = -95; -(100) - (-90) = -10.
        assert_eq!(cost_c1(w, high_tight), -95.0);
        assert_eq!(cost_c1(w, high_loose), -10.0);
    }

    #[test]
    fn c1_weight_extremes() {
        // Priority-only: ties on urgency are ignored.
        let w = EuWeights::priority_only();
        assert_eq!(cost_c1(w, dest(10, 15, 100)), -100.0);
        assert_eq!(cost_c1(w, dest(10, 90, 100)), -100.0);
        // Urgency-only: the tighter deadline (urgency closer to 0) has the
        // *larger* cost... cost = -W_U * urgency = slack. Tighter slack =>
        // smaller cost => preferred. Correct.
        let w = EuWeights::urgency_only();
        assert_eq!(cost_c1(w, dest(10, 15, 100)), 5.0);
        assert_eq!(cost_c1(w, dest(10, 90, 100)), 80.0);
    }

    #[test]
    fn c2_takes_most_urgent_satisfiable() {
        let w = EuWeights::new(0.0, 1.0);
        let dests = [dest(10, 100, 1), dest(10, 20, 1), dest(50, 40, 100)];
        // Satisfiable urgencies: -90 and -10; most urgent (max) is -10.
        // Cost = -1 * (-10) = 10.
        assert_eq!(step_cost(CostCriterion::C2, w, &dests), 10.0);
    }

    #[test]
    fn c2_with_no_satisfiable_has_zero_urgency_term() {
        let w = EuWeights::new(1.0, 1.0);
        let dests = [dest(50, 40, 100)];
        assert_eq!(step_cost(CostCriterion::C2, w, &dests), 0.0);
    }

    #[test]
    fn c3_is_ratio_of_priority_and_urgency() {
        let dests = [dest(10, 20, 100), dest(10, 110, 10)];
        // 100 / -10 + 10 / -100 = -10.1
        let c = step_cost(CostCriterion::C3, EuWeights::new(1.0, 1.0), &dests);
        assert!((c - (-10.1)).abs() < 1e-9);
        // And is independent of the weights.
        let c2 = step_cost(CostCriterion::C3, EuWeights::new(123.0, 0.5), &dests);
        assert_eq!(c, c2);
    }

    #[test]
    fn c3_clamps_zero_urgency() {
        let dests = [dest(40, 40, 10)]; // zero slack
        let c = step_cost(CostCriterion::C3, EuWeights::new(1.0, 1.0), &dests);
        assert!((c - (10.0 / -C3_URGENCY_EPSILON_SECS)).abs() < 1e-6);
        assert!(c.is_finite());
    }

    #[test]
    fn c3_floor_caps_tiny_urgencies() {
        // One destination with 1 s slack, one with 1000 s slack, equal
        // priorities. Under plain C3 the tiny slack dominates; under the
        // floored variant it is capped at one minute.
        let tight = dest(10, 11, 10); // urgency -1
        let loose = dest(10, 1_010, 10); // urgency -1000
        let w = EuWeights::new(1.0, 1.0);
        let c3 = step_cost(CostCriterion::C3, w, &[tight, loose]);
        let c3f = step_cost(CostCriterion::C3Floor, w, &[tight, loose]);
        assert!((c3 - (10.0 / -1.0 + 10.0 / -1000.0)).abs() < 1e-9);
        assert!((c3f - (10.0 / -60.0 + 10.0 / -1000.0)).abs() < 1e-9);
        assert!(c3 < c3f, "the floor reduces the tiny-urgency term's magnitude");
        // Urgencies looser than the floor are untouched.
        let only_loose = [loose];
        assert_eq!(
            step_cost(CostCriterion::C3, w, &only_loose),
            step_cost(CostCriterion::C3Floor, w, &only_loose)
        );
    }

    #[test]
    fn c3_floor_is_eu_independent() {
        let dests = [dest(10, 30, 100)];
        let a = step_cost(CostCriterion::C3Floor, EuWeights::new(1.0, 1.0), &dests);
        let b = step_cost(CostCriterion::C3Floor, EuWeights::new(500.0, 0.1), &dests);
        assert_eq!(a, b);
        assert!(!CostCriterion::C3Floor.uses_eu_ratio());
    }

    #[test]
    fn extensions_are_not_in_the_paper_sets() {
        assert!(!CostCriterion::ALL.contains(&CostCriterion::C3Floor));
        assert!(!CostCriterion::MULTI_DESTINATION.contains(&CostCriterion::C3Floor));
        assert_eq!(CostCriterion::EXTENSIONS, [CostCriterion::C3Floor]);
        assert_eq!(CostCriterion::C3Floor.label(), "C3f");
    }

    #[test]
    fn c4_sums_both_terms() {
        let w = EuWeights::new(2.0, 3.0);
        let dests = [dest(10, 20, 100), dest(10, 110, 10), dest(90, 80, 5)];
        // efp sum = 110; urgency sum = -10 + -100 = -110.
        // cost = -2*110 - 3*(-110) = -220 + 330 = 110.
        assert_eq!(step_cost(CostCriterion::C4, w, &dests), 110.0);
    }

    #[test]
    fn c4_distinguishes_what_c2_cannot() {
        // The paper's motivating example: item A has four tight
        // destinations, item B has one tight and three loose ones.
        let w = EuWeights::new(0.0, 1.0);
        let tight = dest(10, 12, 10); // urgency -2
        let loose = dest(10, 100, 10); // urgency -90
        let item_a = [tight, tight, tight, tight];
        let item_b = [tight, loose, loose, loose];
        // C2 sees only the most urgent destination: identical costs.
        assert_eq!(
            step_cost(CostCriterion::C2, w, &item_a),
            step_cost(CostCriterion::C2, w, &item_b)
        );
        // C4 sums urgencies: item A is strictly more urgent overall.
        assert!(
            step_cost(CostCriterion::C4, w, &item_a) < step_cost(CostCriterion::C4, w, &item_b)
        );
    }

    #[test]
    #[should_panic(expected = "per-destination")]
    fn c1_step_cost_panics() {
        let _ = step_cost(CostCriterion::C1, EuWeights::new(1.0, 1.0), &[]);
    }

    #[test]
    fn eu_weight_constructors() {
        let w = EuWeights::from_log10_ratio(-3.0);
        assert!((w.w_e - 0.001).abs() < 1e-12);
        assert_eq!(w.w_u, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_rejected() {
        let _ = EuWeights::new(-1.0, 0.0);
    }

    #[test]
    fn criterion_labels_and_sets() {
        assert_eq!(CostCriterion::C4.to_string(), "C4");
        assert_eq!(CostCriterion::ALL.len(), 4);
        assert_eq!(CostCriterion::MULTI_DESTINATION.len(), 3);
        assert!(!CostCriterion::MULTI_DESTINATION.contains(&CostCriterion::C1));
        assert!(CostCriterion::C1.uses_eu_ratio());
        assert!(!CostCriterion::C3.uses_eu_ratio());
    }
}
