//! The paper's worked example (§4.8, built on the Figure 1 system):
//! transferring `Rq[0]` from `M[0]` to the next machine `M[3]`, with
//! destinations `M[7]`, `M[8]`, `M[9]`:
//!
//! * deadlines: 10 for `M[7]`, 15 for `M[8]`, 5 for `M[9]` (abstract time
//!   units — seconds here);
//! * shortest-path arrival estimates: 12, 11, 8;
//! * hence `Sat[0,3](0) = 0`, `Sat[0,3](1) = 1`, `Sat[0,3](2) = 0`.
//!
//! We rebuild a network realizing exactly those arrivals and check the
//! candidate-step machinery and every cost criterion against hand
//! calculations.

use dstage_core::cost::{cost_c1, step_cost, CostCriterion, DestinationCost, EuWeights};
use dstage_core::state::SchedulerState;
use dstage_model::prelude::*;

fn m(i: u32) -> MachineId {
    MachineId::new(i)
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

/// Bandwidth such that the 1800-byte item (14400 bits) takes exactly
/// `secs` seconds — 14400 divides evenly by every duration used here, so
/// arrivals land on whole seconds.
fn bw_for(secs: u64) -> BitsPerSec {
    BitsPerSec::new(14_400 / secs)
}

/// M0 holds Rq[0]; all three destination paths go through M3 (the paper's
/// "next machine"), with per-branch speeds tuned to arrive at 12 / 11 / 8.
fn figure1_scenario() -> Scenario {
    let mut b = NetworkBuilder::new();
    for i in 0..10 {
        b.add_machine(Machine::new(format!("M{i}"), Bytes::from_mib(1)));
    }
    let win = SimTime::from_hours(2);
    // M0 -> M3 takes 2 s.
    b.add_link(VirtualLink::new(m(0), m(3), SimTime::ZERO, win, bw_for(2)));
    // Branches from M3: arrivals 2 + 10 = 12, 2 + 9 = 11, 2 + 6 = 8.
    b.add_link(VirtualLink::new(m(3), m(7), SimTime::ZERO, win, bw_for(10)));
    b.add_link(VirtualLink::new(m(3), m(8), SimTime::ZERO, win, bw_for(9)));
    b.add_link(VirtualLink::new(m(3), m(9), SimTime::ZERO, win, bw_for(6)));
    Scenario::builder(b.build())
        .add_item(DataItem::new(
            "Rq0",
            Bytes::new(1_800),
            vec![DataSource::new(m(0), SimTime::ZERO)],
        ))
        .add_request(Request::new(DataItemId::new(0), m(7), t(10), Priority::HIGH))
        .add_request(Request::new(DataItemId::new(0), m(8), t(15), Priority::HIGH))
        .add_request(Request::new(DataItemId::new(0), m(9), t(5), Priority::HIGH))
        .build()
        .unwrap()
}

#[test]
fn arrivals_match_the_papers_numbers() {
    let scenario = figure1_scenario();
    let mut state = SchedulerState::new(&scenario);
    let tree = state.tree(DataItemId::new(0));
    assert_eq!(tree.arrival(m(3)), t(2));
    assert_eq!(tree.arrival(m(7)), t(12));
    assert_eq!(tree.arrival(m(8)), t(11));
    assert_eq!(tree.arrival(m(9)), t(8));
}

#[test]
fn drq_groups_all_three_destinations_behind_m3() {
    let scenario = figure1_scenario();
    let mut state = SchedulerState::new(&scenario);
    let steps = state.candidate_steps(DataItemId::new(0));
    assert_eq!(steps.len(), 1, "all paths share the first hop M0 -> M3");
    let step = &steps[0];
    assert_eq!(step.hop.from, m(0));
    assert_eq!(step.hop.to, m(3));
    assert_eq!(step.destinations.len(), 3, "Drq[0,3] = {{M7, M8, M9}}");
    // Sat values exactly as in the paper.
    let sat: Vec<bool> = step.destinations.iter().map(|d| d.satisfiable).collect();
    assert_eq!(sat, vec![false, true, false]);
}

#[test]
fn cost_criteria_match_hand_calculations() {
    // Ingredients: only M8 is satisfiable; Efp = W[high] = 100,
    // Urgency = -(15 - 11) = -4 s.
    let scenario = figure1_scenario();
    let mut state = SchedulerState::new(&scenario);
    let step = state.candidate_steps(DataItemId::new(0)).remove(0);
    let w = PriorityWeights::paper_1_10_100();
    let dcs: Vec<DestinationCost> = step
        .destinations
        .iter()
        .map(|d| {
            let req = scenario.request(d.request);
            DestinationCost::new(d.arrival, req.deadline(), w.weight(req.priority()))
        })
        .collect();
    let eu = EuWeights::new(2.0, 3.0);
    // C1 for the satisfiable destination: -2*100 - 3*(-4) = -188.
    assert_eq!(cost_c1(eu, dcs[1]), -188.0);
    // Unsatisfiable destinations cost 0 under C1.
    assert_eq!(cost_c1(eu, dcs[0]), 0.0);
    assert_eq!(cost_c1(eu, dcs[2]), 0.0);
    // C2: efp sum 100, max urgency -4 => -2*100 - 3*(-4) = -188.
    assert_eq!(step_cost(CostCriterion::C2, eu, &dcs), -188.0);
    // C4: same sums with a single satisfiable destination => -188.
    assert_eq!(step_cost(CostCriterion::C4, eu, &dcs), -188.0);
    // C3: 100 / -4 = -25 (weights ignored).
    assert_eq!(step_cost(CostCriterion::C3, eu, &dcs), -25.0);
    // C3Floor: urgency floored at -60 => 100 / -60.
    let c3f = step_cost(CostCriterion::C3Floor, eu, &dcs);
    assert!((c3f - (100.0 / -60.0)).abs() < 1e-12);
}

#[test]
fn scheduling_delivers_exactly_the_satisfiable_request() {
    use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
    let scenario = figure1_scenario();
    for h in Heuristic::ALL {
        let out = run(&scenario, h, &HeuristicConfig::paper_best());
        out.schedule.validate(&scenario).unwrap();
        assert!(out.schedule.delivery_of(RequestId::new(1)).is_some(), "{h}: M8 satisfiable");
        assert!(out.schedule.delivery_of(RequestId::new(0)).is_none(), "{h}: M7 misses by 2 s");
        assert!(out.schedule.delivery_of(RequestId::new(2)).is_none(), "{h}: M9 misses by 3 s");
        // The delivery uses the two-hop staged path via M3.
        assert_eq!(out.schedule.delivery_of(RequestId::new(1)).unwrap().at, t(11));
    }
}
