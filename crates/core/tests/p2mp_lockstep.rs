//! Point-to-multipoint lockstep and shared-hop pinning.
//!
//! A P2MP request expands to one per-destination request, so a group
//! with a single destination must be *indistinguishable* from the plain
//! request — byte-identical schedules under every scheduler. A wider
//! group must pay shared upstream hops once while earning each
//! satisfied destination its own `W[p]`.

use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
use dstage_model::data::{DataItem, DataSource};
use dstage_model::ids::{DataItemId, MachineId};
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::{Network, NetworkBuilder};
use dstage_model::request::{P2mpRequest, Priority, PriorityWeights, Request};
use dstage_model::scenario::Scenario;
use dstage_model::time::SimTime;
use dstage_model::units::{BitsPerSec, Bytes};

/// src -> hub -> {d1, d2, d3}: one staged hop feeds all leaves.
fn fan_out_network() -> Network {
    let mut b = NetworkBuilder::new();
    let src = b.add_machine(Machine::new("src", Bytes::from_mib(64)));
    let hub = b.add_machine(Machine::new("hub", Bytes::from_mib(64)));
    let leaves: Vec<MachineId> =
        (0..3).map(|i| b.add_machine(Machine::new(format!("d{i}"), Bytes::from_mib(64)))).collect();
    let horizon = SimTime::from_hours(2);
    // 8 Kbit/s = 1 byte/ms.
    b.add_link(VirtualLink::new(src, hub, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
    b.add_link(VirtualLink::new(hub, src, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
    for &leaf in &leaves {
        b.add_link(VirtualLink::new(hub, leaf, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
        b.add_link(VirtualLink::new(leaf, hub, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
    }
    b.build()
}

fn item() -> DataItem {
    DataItem::new(
        "weather",
        Bytes::from_kib(40),
        vec![DataSource::new(MachineId::new(0), SimTime::ZERO)],
    )
}

#[test]
fn single_destination_p2mp_is_byte_identical_to_plain_request_across_all_schedulers() {
    let deadline = SimTime::from_mins(60);
    let plain = Scenario::builder(fan_out_network())
        .add_item(item())
        .add_request(Request::new(DataItemId::new(0), MachineId::new(2), deadline, Priority::HIGH))
        .build()
        .unwrap();
    let p2mp = Scenario::builder(fan_out_network())
        .add_item(item())
        .add_p2mp_request(&P2mpRequest::new(
            DataItemId::new(0),
            vec![MachineId::new(2)],
            deadline,
            Priority::HIGH,
        ))
        .build()
        .unwrap();
    assert_eq!(p2mp.p2mp_groups().len(), 1);

    let config = HeuristicConfig::paper_best();
    for heuristic in Heuristic::EXTENDED {
        let a = run(&plain, heuristic, &config).schedule;
        let b = run(&p2mp, heuristic, &config).schedule;
        let a_bytes = serde_json::to_string(&a).unwrap();
        let b_bytes = serde_json::to_string(&b).unwrap();
        assert_eq!(a_bytes, b_bytes, "{heuristic:?}: single-destination P2MP must be a no-op");
    }
}

#[test]
fn p2mp_group_shares_the_upstream_hop_and_credits_each_destination() {
    let deadline = SimTime::from_mins(60);
    let scenario = Scenario::builder(fan_out_network())
        .add_item(item())
        .add_p2mp_request(&P2mpRequest::new(
            DataItemId::new(0),
            vec![MachineId::new(2), MachineId::new(3), MachineId::new(4)],
            deadline,
            Priority::HIGH,
        ))
        .build()
        .unwrap();

    let config = HeuristicConfig::paper_best();
    let weights = PriorityWeights::paper_1_10_100();
    for heuristic in Heuristic::EXTENDED {
        let schedule = run(&scenario, heuristic, &config).schedule;
        // Every destination satisfied, each earning its own W[p].
        let evaluation = schedule.evaluate(&scenario, &weights);
        assert_eq!(
            schedule.deliveries().len(),
            3,
            "{heuristic:?}: all three group members must be delivered"
        );
        assert_eq!(
            evaluation.weighted_sum,
            3 * weights.weight(Priority::HIGH),
            "{heuristic:?}: per-destination credit"
        );
        // The src -> hub hop is staged once and shared; the only other
        // transfers are the three hub -> leaf legs.
        let into_hub = schedule.transfers().iter().filter(|t| t.to == MachineId::new(1)).count();
        assert_eq!(into_hub, 1, "{heuristic:?}: shared hop must be paid exactly once");
        assert_eq!(
            schedule.transfers().len(),
            4,
            "{heuristic:?}: one shared hop plus three leaf legs"
        );
    }
}
