//! Diagnostic: where do the bounds and baselines sit on paper-scale
//! scenarios? (Used to verify the workload is genuinely oversubscribed.)

use dstage_core::prelude::*;
use dstage_workload::{generate, GeneratorConfig};

#[test]
fn bounds_ordering_sanity() {
    let w = PriorityWeights::paper_1_10_100();
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::paper(), seed);
        let ub = upper_bound(&scenario, &w);
        let ps = possible_satisfy(&scenario, &w);
        let cfg = HeuristicConfig::paper_best();
        let best = run(&scenario, Heuristic::FullPathOneDestination, &cfg);
        let best_eval = best.schedule.evaluate(&scenario, &w);
        let sdr = single_dijkstra_random(&scenario, seed);
        let sdr_eval = sdr.schedule.evaluate(&scenario, &w);
        let rd = random_dijkstra(&scenario, seed);
        let rd_eval = rd.schedule.evaluate(&scenario, &w);
        let pf = priority_first(&scenario, &w);
        let pf_eval = pf.schedule.evaluate(&scenario, &w);
        eprintln!(
            "seed {seed}: ub={ub} possible={} full_one={} prio_first={} rand_dij={} single_dij={} (requests={} possible_n={})",
            ps.weighted_sum, best_eval.weighted_sum, pf_eval.weighted_sum,
            rd_eval.weighted_sum, sdr_eval.weighted_sum,
            scenario.request_count(), ps.satisfiable.len(),
        );
        assert!(ps.weighted_sum <= ub);
        assert!(best_eval.weighted_sum <= ps.weighted_sum);
    }
}
