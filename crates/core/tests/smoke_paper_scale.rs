//! Paper-scale smoke test: one full run of each heuristic on a generated
//! scenario, with schedule validation.

use dstage_core::prelude::*;
use dstage_workload::{generate, GeneratorConfig};

#[test]
fn paper_scale_run_validates() {
    let scenario = generate(&GeneratorConfig::paper(), 0);
    let config = HeuristicConfig::paper_best();
    for h in Heuristic::ALL {
        let start = std::time::Instant::now();
        let out = run(&scenario, h, &config);
        let eval = out.schedule.evaluate(&scenario, &config.priority_weights);
        eprintln!(
            "{h}: weighted={} satisfied={}/{} dijkstra={} cachehits={} transfers={} in {:?}",
            eval.weighted_sum,
            eval.satisfied_count,
            eval.request_count,
            out.metrics.dijkstra_runs,
            out.metrics.cache_hits,
            out.metrics.transfers_committed,
            start.elapsed()
        );
        out.schedule.validate(&scenario).expect("schedule must replay");
        assert!(eval.weighted_sum > 0);
    }
}
