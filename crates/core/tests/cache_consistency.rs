//! Lockstep equivalence of the tree-cache modes (DESIGN.md §3).
//!
//! Three `SchedulerState`s — caching with incremental repair, caching
//! with rebuild-on-dirty, and no caching at all — are driven through the
//! same randomized sequence of commits, evictions (copy losses), link
//! outages, past-blocking, and stale re-admissions. At every step their
//! candidate enumerations must agree, and the final schedules must be
//! equal. This pins the "resources are only consumed" invalidation
//! argument across *every* mutation path the dynamic layer exercises,
//! not just the commit-driven ones the unit tests cover.

use dstage_core::state::SchedulerState;
use dstage_model::ids::{DataItemId, MachineId, VirtualLinkId};
use dstage_model::time::SimTime;
use dstage_workload::{generate, GeneratorConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn caching_repair_and_rebuild_modes_stay_in_lockstep(
        seed in 0u64..8,
        ops in prop::collection::vec((0u8..8, 0usize..64, 0u64..900), 1..20),
    ) {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let items = scenario.item_count();
        let machines = scenario.network().machine_count();
        let links = scenario.network().link_count();

        let mut repairing = SchedulerState::with_caching(&scenario, true);
        repairing.set_tree_repair(true);
        let mut rebuilding = SchedulerState::with_caching(&scenario, true);
        rebuilding.set_tree_repair(false);
        let mut uncached = SchedulerState::with_caching(&scenario, false);

        let mut now = SimTime::ZERO;
        for &(op, pick, time) in &ops {
            match op {
                // Commit a candidate step — the common case, so several
                // selector values map here. Even ops commit the single
                // hop; odd ops commit whole paths to the step's
                // destinations (both commit surfaces journal).
                0..=3 => {
                    let steps = repairing.all_candidate_steps();
                    prop_assert_eq!(&steps, &rebuilding.all_candidate_steps());
                    prop_assert_eq!(&steps, &uncached.all_candidate_steps());
                    if steps.is_empty() {
                        continue;
                    }
                    let step = steps[pick % steps.len()].clone();
                    if op % 2 == 0 {
                        for state in [&mut repairing, &mut rebuilding, &mut uncached] {
                            state.commit_hop(step.item, step.hop);
                        }
                    } else {
                        let dests: Vec<MachineId> = step
                            .destinations
                            .iter()
                            .map(|d| scenario.request(d.request).destination())
                            .collect();
                        let n = repairing.commit_paths(step.item, &dests);
                        prop_assert_eq!(n, rebuilding.commit_paths(step.item, &dests));
                        prop_assert_eq!(n, uncached.commit_paths(step.item, &dests));
                    }
                }
                // Eviction: a copy loss at a random machine, as the
                // dynamic layer's disturbance replay issues it.
                4 => {
                    let item = DataItemId::new((pick % items) as u32);
                    let machine = MachineId::new((time as usize % machines) as u32);
                    let removed = repairing.remove_copies(item, machine, now);
                    prop_assert_eq!(removed, rebuilding.remove_copies(item, machine, now));
                    prop_assert_eq!(removed, uncached.remove_copies(item, machine, now));
                }
                // Link outage from the current instant.
                5 => {
                    let link = VirtualLinkId::new((pick % links) as u32);
                    for state in [&mut repairing, &mut rebuilding, &mut uncached] {
                        state.apply_link_outage(link, now);
                    }
                }
                // Advance the clock and wall off the past (replanning).
                6 => {
                    now = now.max(SimTime::from_secs(time));
                    for state in [&mut repairing, &mut rebuilding, &mut uncached] {
                        state.block_past(now);
                    }
                }
                // Re-admission of a stale hop: plan from the current tree,
                // then try the commit — success must agree across modes.
                _ => {
                    let steps = repairing.all_candidate_steps();
                    prop_assert_eq!(&steps, &rebuilding.all_candidate_steps());
                    prop_assert_eq!(&steps, &uncached.all_candidate_steps());
                    if steps.is_empty() {
                        continue;
                    }
                    let step = steps[pick % steps.len()].clone();
                    let ok = repairing.try_commit_stale_hop(step.item, step.hop);
                    prop_assert_eq!(ok, rebuilding.try_commit_stale_hop(step.item, step.hop));
                    prop_assert_eq!(ok, uncached.try_commit_stale_hop(step.item, step.hop));
                }
            }
        }

        // Repair and rebuild must agree on the *reported* effort too: a
        // repair counts as one dijkstra run, so sweep metrics stay
        // byte-identical with the gate on or off.
        let repairing_metrics = repairing.metrics();
        let rebuilding_metrics = rebuilding.metrics();
        prop_assert_eq!(repairing_metrics.dijkstra_runs, rebuilding_metrics.dijkstra_runs);
        prop_assert_eq!(repairing_metrics.cache_hits, rebuilding_metrics.cache_hits);

        let (repaired_schedule, _) = repairing.into_outcome();
        let (rebuilt_schedule, _) = rebuilding.into_outcome();
        let (uncached_schedule, _) = uncached.into_outcome();
        prop_assert_eq!(&repaired_schedule, &rebuilt_schedule);
        prop_assert_eq!(&repaired_schedule, &uncached_schedule);
    }
}
