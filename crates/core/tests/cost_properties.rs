//! Property-based tests for the cost criteria (§4.8).

use dstage_core::cost::{cost_c1, step_cost, CostCriterion, DestinationCost, EuWeights};
use dstage_model::time::SimTime;
use proptest::prelude::*;

fn dest(arrival_s: u64, deadline_s: u64, weight: u64) -> DestinationCost {
    DestinationCost::new(SimTime::from_secs(arrival_s), SimTime::from_secs(deadline_s), weight)
}

fn dest_strategy() -> impl Strategy<Value = DestinationCost> {
    (0u64..5_000, 0u64..5_000, 1u64..=100).prop_map(|(a, d, w)| dest(a, d, w))
}

fn weights_strategy() -> impl Strategy<Value = EuWeights> {
    (0.0f64..1_000.0, 0.0f64..1_000.0).prop_map(|(e, u)| EuWeights::new(e, u))
}

proptest! {
    #[test]
    fn all_costs_are_finite(
        dests in prop::collection::vec(dest_strategy(), 0..10),
        w in weights_strategy(),
    ) {
        for c in [CostCriterion::C2, CostCriterion::C3, CostCriterion::C4, CostCriterion::C3Floor] {
            let cost = step_cost(c, w, &dests);
            prop_assert!(cost.is_finite(), "{c} produced {cost}");
        }
        for d in &dests {
            prop_assert!(cost_c1(w, *d).is_finite());
        }
    }

    #[test]
    fn single_destination_collapses_c2_and_c4_to_c1(
        d in dest_strategy(),
        w in weights_strategy(),
    ) {
        // With |Drq| = 1 and the destination satisfiable, the sums and the
        // max all see exactly one value: C2 = C4 = C1.
        prop_assume!(d.satisfiable);
        let c1 = cost_c1(w, d);
        prop_assert_eq!(step_cost(CostCriterion::C2, w, &[d]), c1);
        prop_assert_eq!(step_cost(CostCriterion::C4, w, &[d]), c1);
    }

    #[test]
    fn unsatisfiable_destinations_are_inert(
        dests in prop::collection::vec(dest_strategy(), 0..8),
        w in weights_strategy(),
        arrival in 1_000u64..5_000,
    ) {
        // Appending a destination that misses its deadline changes no
        // criterion ("that request receives no resources", §4.8).
        let missed = dest(arrival, arrival - 1, 100);
        prop_assert!(!missed.satisfiable);
        let mut extended = dests.clone();
        extended.push(missed);
        for c in [CostCriterion::C2, CostCriterion::C3, CostCriterion::C4, CostCriterion::C3Floor] {
            prop_assert_eq!(step_cost(c, w, &dests), step_cost(c, w, &extended), "{}", c);
        }
    }

    #[test]
    fn ratio_criteria_ignore_the_eu_weights(
        dests in prop::collection::vec(dest_strategy(), 0..8),
        wa in weights_strategy(),
        wb in weights_strategy(),
    ) {
        for c in [CostCriterion::C3, CostCriterion::C3Floor] {
            prop_assert_eq!(step_cost(c, wa, &dests), step_cost(c, wb, &dests));
        }
    }

    #[test]
    fn ratio_criteria_are_nonpositive_and_monotone_in_coverage(
        dests in prop::collection::vec(dest_strategy(), 1..8),
        extra in dest_strategy(),
    ) {
        let w = EuWeights::new(1.0, 1.0);
        for c in [CostCriterion::C3, CostCriterion::C3Floor] {
            let base = step_cost(c, w, &dests);
            prop_assert!(base <= 0.0, "{c} must be a sum of non-positive terms");
            // Adding any destination can only make the step more
            // attractive (or leave it unchanged).
            let mut extended = dests.clone();
            extended.push(extra);
            prop_assert!(step_cost(c, w, &extended) <= base);
        }
    }

    #[test]
    fn c1_prefers_heavier_priorities(
        arrival in 0u64..4_000,
        slack in 0u64..1_000,
        w_low in 1u64..50,
        bump in 1u64..50,
        weights in weights_strategy(),
    ) {
        prop_assume!(weights.w_e > 0.0);
        let deadline = arrival + slack;
        let light = dest(arrival, deadline, w_low);
        let heavy = dest(arrival, deadline, w_low + bump);
        prop_assert!(cost_c1(weights, heavy) < cost_c1(weights, light));
    }

    #[test]
    fn c1_prefers_tighter_deadlines_at_equal_priority(
        arrival in 0u64..4_000,
        slack in 0u64..1_000,
        extra_slack in 1u64..1_000,
        weight in 1u64..100,
        weights in weights_strategy(),
    ) {
        prop_assume!(weights.w_u > 0.0);
        let tight = dest(arrival, arrival + slack, weight);
        let loose = dest(arrival, arrival + slack + extra_slack, weight);
        prop_assert!(cost_c1(weights, tight) < cost_c1(weights, loose));
    }

    #[test]
    fn c2_urgency_term_is_the_most_urgent_satisfiable(
        dests in prop::collection::vec(dest_strategy(), 1..8),
    ) {
        // With W_E = 0 and W_U = 1, C2 equals the negated maximum urgency
        // over satisfiable destinations (0 when none are satisfiable).
        let w = EuWeights::new(0.0, 1.0);
        let expected = -dests
            .iter()
            .filter(|d| d.satisfiable)
            .map(|d| d.urgency)
            .fold(f64::NEG_INFINITY, f64::max);
        let expected = if expected.is_finite() { expected } else { 0.0 };
        prop_assert_eq!(step_cost(CostCriterion::C2, w, &dests), expected);
    }

    #[test]
    fn c4_equals_sum_of_c1_terms(
        dests in prop::collection::vec(dest_strategy(), 0..8),
        w in weights_strategy(),
    ) {
        let sum: f64 = dests.iter().map(|d| cost_c1(w, *d)).sum();
        let c4 = step_cost(CostCriterion::C4, w, &dests);
        prop_assert!((c4 - sum).abs() <= 1e-9 * (1.0 + c4.abs()));
    }
}
