//! Deadline-headroom scheduling subsystem.
//!
//! The headroom-aware schedulers themselves — `alap` (latest-feasible
//! placement, DDCCast-style) and `rcd` (close-to-deadline admission) —
//! live in `dstage_core` beside the paper's three heuristics, because
//! they share the candidate-step and placement machinery of
//! [`dstage_core::state::SchedulerState`]. This crate owns the layer on
//! top: an *anytime evict-and-rerun local search* that improves any base
//! schedule by trading satisfied low-weight requests for refused
//! higher-weight ones.
//!
//! [`optimize_schedule`] wraps a static heuristic run; [`optimize_with`]
//! is the generic engine and accepts any planner that can re-plan with a
//! set of requests excluded — the rolling-horizon simulator of
//! `dstage_dynamic` plugs its replay-aware planner in here, and the live
//! admission daemon implements the same climb natively against its
//! decision log. The climb only ever *adopts* strict improvements of the
//! weighted satisfied sum `E[S]`, so interrupting it at any budget leaves
//! a schedule no worse than the base plan.
//!
//! # Examples
//!
//! ```
//! use dstage_core::heuristic::{run, Heuristic, HeuristicConfig};
//! use dstage_sched::optimize_schedule;
//! use dstage_workload::small::contended_link;
//!
//! let scenario = contended_link();
//! let config = HeuristicConfig::paper_best();
//! let base = run(&scenario, Heuristic::PartialPath, &config);
//! let best = optimize_schedule(&scenario, Heuristic::PartialPath, &config, 8);
//! let weights = &config.priority_weights;
//! assert!(best.evaluation.weighted_sum >= base.schedule.evaluate(&scenario, weights).weighted_sum);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;

use dstage_core::heuristic::{drive_state, Heuristic, HeuristicConfig};
use dstage_core::schedule::{Evaluation, Schedule};
use dstage_core::state::SchedulerState;
use dstage_model::ids::RequestId;
use dstage_model::request::PriorityWeights;
use dstage_model::scenario::Scenario;

/// The result of an optimization pass.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The best schedule found (the base plan when nothing improved).
    pub schedule: Schedule,
    /// Its evaluation under the pass's priority weighting.
    pub evaluation: Evaluation,
    /// Requests the kept swaps excluded from planning, in adoption order.
    pub evicted: Vec<RequestId>,
    /// Evict-and-rerun trials spent.
    pub attempted: u64,
    /// Trials that strictly improved `E[S]` and were kept.
    pub accepted: u64,
}

/// Runs `heuristic` on `scenario` and hill-climbs the result with up to
/// `budget` evict-and-rerun trials.
///
/// # Panics
///
/// Panics where the underlying heuristic does (the full path/all
/// destinations + `Cost₁` pairing).
#[must_use]
pub fn optimize_schedule(
    scenario: &Scenario,
    heuristic: Heuristic,
    config: &HeuristicConfig,
    budget: u64,
) -> OptimizeOutcome {
    optimize_with(scenario, &config.priority_weights, budget, |excluded| {
        // Each eviction trial re-plans from a FRESH state: no ledger
        // reservation is ever released mid-run, which is what keeps the
        // tree cache's consumption-only invalidation argument (and its
        // incremental repair) sound. Do not "optimize" this into reusing
        // a state across trials.
        let mut state = SchedulerState::with_caching(scenario, config.caching);
        for &r in excluded {
            state.set_request_active(r, false);
        }
        drive_state(&mut state, heuristic, config);
        state.into_outcome().0
    })
}

/// The anytime hill climb over an arbitrary re-planner.
///
/// `plan` must return the schedule the planner produces when the given
/// requests are excluded (treated as if never submitted); it is first
/// called with no exclusions to establish the base plan. Each trial
/// excludes one *victim* — a satisfied request strictly lighter than some
/// refused request — and re-plans; the exclusion is kept iff the weighted
/// satisfied sum strictly improves. Candidates are tried heaviest first,
/// victims lightest first, ids breaking ties, and the victim set is
/// re-derived after every adopted swap, so equal inputs climb equal paths
/// (determinism). The climb stops at the trial `budget` or at a local
/// optimum, whichever comes first.
///
/// The result is never worse than the base plan: only strict improvements
/// are adopted.
pub fn optimize_with(
    scenario: &Scenario,
    weights: &PriorityWeights,
    budget: u64,
    mut plan: impl FnMut(&[RequestId]) -> Schedule,
) -> OptimizeOutcome {
    let mut excluded: Vec<RequestId> = Vec::new();
    let mut best = plan(&excluded);
    let mut best_eval = best.evaluate(scenario, weights);
    let mut attempted = 0u64;
    let mut accepted = 0u64;
    'climb: loop {
        // Refused requests, heaviest first (ties: lowest id) — the ones
        // worth making room for.
        let mut refused: Vec<(u64, RequestId)> = scenario
            .requests()
            .filter(|&(id, r)| {
                !excluded.contains(&id) && best.delivery_of(id).is_none_or(|d| d.at > r.deadline())
            })
            .map(|(id, r)| (weights.weight(r.priority()), id))
            .collect();
        refused.sort_by_key(|&(w, id)| (Reverse(w), id));
        let adopted_before = accepted;
        for (want, _candidate) in refused {
            // Victims: satisfied requests strictly lighter than the
            // candidate, lightest first — evicting heavier or equal work
            // could never improve the sum.
            let mut victims: Vec<(u64, RequestId)> = scenario
                .requests()
                .filter(|&(id, r)| {
                    !excluded.contains(&id)
                        && best.delivery_of(id).is_some_and(|d| d.at <= r.deadline())
                })
                .map(|(id, r)| (weights.weight(r.priority()), id))
                .filter(|&(w, _)| w < want)
                .collect();
            victims.sort_unstable();
            for (_, victim) in victims {
                if attempted >= budget {
                    break 'climb;
                }
                attempted += 1;
                let mut trial_excluded = excluded.clone();
                trial_excluded.push(victim);
                let trial = plan(&trial_excluded);
                let trial_eval = trial.evaluate(scenario, weights);
                if trial_eval.weighted_sum > best_eval.weighted_sum {
                    excluded = trial_excluded;
                    best = trial;
                    best_eval = trial_eval;
                    accepted += 1;
                    // The satisfied set changed; re-derive everything.
                    continue 'climb;
                }
            }
        }
        if accepted == adopted_before {
            break; // a full sweep adopted nothing — local optimum
        }
    }
    OptimizeOutcome {
        schedule: best,
        evaluation: best_eval,
        evicted: excluded,
        attempted,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstage_core::heuristic::run;
    use dstage_core::schedule::Delivery;
    use dstage_model::time::SimTime;
    use dstage_workload::small::{contended_link, fan_out, two_hop_chain};

    fn config() -> HeuristicConfig {
        HeuristicConfig::paper_best()
    }

    #[test]
    fn never_decreases_any_heuristic_on_the_small_scenarios() {
        for scenario in [two_hop_chain(), fan_out(), contended_link()] {
            for heuristic in Heuristic::EXTENDED {
                let config = config();
                let base = run(&scenario, heuristic, &config)
                    .schedule
                    .evaluate(&scenario, &config.priority_weights);
                let best = optimize_schedule(&scenario, heuristic, &config, 6);
                assert!(
                    best.evaluation.weighted_sum >= base.weighted_sum,
                    "{heuristic:?} got worse: {} < {}",
                    best.evaluation.weighted_sum,
                    base.weighted_sum
                );
            }
        }
    }

    #[test]
    fn adopts_a_strictly_improving_swap() {
        // A perverse planner that satisfies only the LOW request until the
        // climb excludes it, then satisfies the HIGH one — the climb must
        // discover the 1 → 100 trade in a single trial.
        let scenario = contended_link();
        let high = RequestId::new(0);
        let low = RequestId::new(1);
        let deliver = |id: RequestId| {
            Schedule::from_parts(
                Vec::new(),
                vec![Delivery { request: id, at: SimTime::from_secs(10), hops: 1 }],
            )
        };
        let weights = config().priority_weights;
        let outcome = optimize_with(&scenario, &weights, 8, |excluded| {
            if excluded.contains(&low) {
                deliver(high)
            } else {
                deliver(low)
            }
        });
        assert_eq!((outcome.attempted, outcome.accepted), (1, 1));
        assert_eq!(outcome.evicted, vec![low]);
        assert_eq!(outcome.evaluation.weighted_sum, 100);
        assert!(outcome.schedule.delivery_of(high).is_some());
    }

    #[test]
    fn budget_zero_returns_the_base_plan() {
        let scenario = contended_link();
        let config = config();
        let base = run(&scenario, Heuristic::PartialPath, &config);
        let outcome = optimize_schedule(&scenario, Heuristic::PartialPath, &config, 0);
        assert_eq!((outcome.attempted, outcome.accepted), (0, 0));
        assert!(outcome.evicted.is_empty());
        assert_eq!(outcome.schedule, base.schedule);
    }

    #[test]
    fn light_refusals_spend_no_budget_on_hopeless_trials() {
        // contended_link: the heuristics satisfy the HIGH request and
        // refuse the LOW one — which has no lighter victims, so the climb
        // terminates without a single trial.
        let scenario = contended_link();
        let config = config();
        let outcome = optimize_schedule(&scenario, Heuristic::FullPathOneDestination, &config, 50);
        assert_eq!(outcome.attempted, 0);
        assert_eq!(outcome.evaluation.weighted_sum, 100);
    }

    #[test]
    fn deterministic_across_runs() {
        let scenario = fan_out();
        let config = config();
        let a = optimize_schedule(&scenario, Heuristic::Alap, &config, 8);
        let b = optimize_schedule(&scenario, Heuristic::Alap, &config, 8);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!((a.attempted, a.accepted), (b.attempted, b.accepted));
        assert_eq!(a.evicted, b.evicted);
    }
}
