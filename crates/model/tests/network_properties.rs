//! Property-based tests for the network graph utilities.
//!
//! Tarjan's algorithm is checked against a brute-force
//! reachability (Floyd–Warshall) oracle on random digraphs.

use dstage_model::ids::MachineId;
use dstage_model::link::VirtualLink;
use dstage_model::machine::Machine;
use dstage_model::network::{Network, NetworkBuilder};
use dstage_model::time::SimTime;
use dstage_model::units::{BitsPerSec, Bytes};
use proptest::prelude::*;

fn build_network(machines: usize, edges: &[(usize, usize)]) -> Network {
    let mut b = NetworkBuilder::new();
    for i in 0..machines {
        b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(1)));
    }
    for &(s, d) in edges {
        if s != d {
            b.add_link(VirtualLink::new(
                MachineId::new(s as u32),
                MachineId::new(d as u32),
                SimTime::ZERO,
                SimTime::from_hours(1),
                BitsPerSec::from_kbps(10),
            ));
        }
    }
    b.build()
}

/// Floyd–Warshall transitive closure.
fn reachability(machines: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
    let mut reach = vec![vec![false; machines]; machines];
    for (i, row) in reach.iter_mut().enumerate() {
        row[i] = true;
    }
    for &(s, d) in edges {
        if s != d {
            reach[s][d] = true;
        }
    }
    for k in 0..machines {
        for i in 0..machines {
            for j in 0..machines {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    reach
}

proptest! {
    #[test]
    fn strong_connectivity_matches_reachability_oracle(
        machines in 1usize..9,
        edges in prop::collection::vec((0usize..9, 0usize..9), 0..40),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(s, d)| (s % machines, d % machines)).collect();
        let net = build_network(machines, &edges);
        let reach = reachability(machines, &edges);
        let expected = (0..machines).all(|i| (0..machines).all(|j| reach[i][j]));
        prop_assert_eq!(net.is_strongly_connected(), expected);
    }

    #[test]
    fn scc_partition_is_consistent_with_mutual_reachability(
        machines in 1usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..30),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(s, d)| (s % machines, d % machines)).collect();
        let net = build_network(machines, &edges);
        let reach = reachability(machines, &edges);
        let components = net.strongly_connected_components();
        // Every machine appears exactly once.
        let mut seen = vec![0usize; machines];
        for comp in &components {
            for &mid in comp {
                seen[mid.index()] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "partition broken: {seen:?}");
        // Same component <=> mutually reachable.
        let mut comp_of = vec![usize::MAX; machines];
        for (ci, comp) in components.iter().enumerate() {
            for &mid in comp {
                comp_of[mid.index()] = ci;
            }
        }
        for i in 0..machines {
            for j in 0..machines {
                let mutual = reach[i][j] && reach[j][i];
                prop_assert_eq!(
                    comp_of[i] == comp_of[j],
                    mutual,
                    "machines {} and {} disagree", i, j
                );
            }
        }
    }

    #[test]
    fn adjacency_is_complete_and_consistent(
        machines in 2usize..8,
        edges in prop::collection::vec((0usize..8, 0usize..8), 0..30),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().map(|(s, d)| (s % machines, d % machines)).collect();
        let net = build_network(machines, &edges);
        // Every link appears in exactly one outgoing and one incoming list.
        let mut out_total = 0;
        let mut in_total = 0;
        for mid in net.machine_ids() {
            for &l in net.outgoing(mid) {
                prop_assert_eq!(net.link(l).source(), mid);
                out_total += 1;
            }
            for &l in net.incoming(mid) {
                prop_assert_eq!(net.link(l).destination(), mid);
                in_total += 1;
            }
        }
        prop_assert_eq!(out_total, net.link_count());
        prop_assert_eq!(in_total, net.link_count());
        // Neighbors are exactly the distinct outgoing targets.
        for mid in net.machine_ids() {
            let mut targets: Vec<_> =
                net.outgoing(mid).iter().map(|&l| net.link(l).destination()).collect();
            targets.sort();
            targets.dedup();
            prop_assert_eq!(net.neighbors(mid), targets);
        }
    }
}
