//! JSON round-trip tests for the model types (external interchange via
//! the `scenarios` exporter).

use dstage_model::prelude::*;

fn sample_scenario() -> Scenario {
    let mut b = NetworkBuilder::new();
    let a = b.add_machine(Machine::new("alpha", Bytes::from_gib(2)));
    let c = b.add_machine(Machine::new("charlie", Bytes::from_mib(64)));
    b.add_link(VirtualLink::with_latency(
        a,
        c,
        SimTime::from_mins(5),
        SimTime::from_mins(35),
        BitsPerSec::from_kbps(256),
        SimDuration::from_millis(120),
    ));
    b.add_link(VirtualLink::new(
        c,
        a,
        SimTime::ZERO,
        SimTime::from_hours(2),
        BitsPerSec::from_mbps(1),
    ));
    Scenario::builder(b.build())
        .gc_delay(SimDuration::from_mins(7))
        .horizon(SimTime::from_hours(3))
        .add_item(DataItem::new(
            "weather",
            Bytes::from_kib(640),
            vec![DataSource::new(a, SimTime::from_secs(30))],
        ))
        .add_request(Request::new(DataItemId::new(0), c, SimTime::from_mins(20), Priority::HIGH))
        .build()
        .unwrap()
}

#[test]
fn scenario_roundtrips_through_json() {
    let original = sample_scenario();
    let json = serde_json::to_string(&original).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back.item_count(), original.item_count());
    assert_eq!(back.request_count(), original.request_count());
    assert_eq!(back.gc_delay(), original.gc_delay());
    assert_eq!(back.horizon(), original.horizon());
    assert_eq!(back.network().machine_count(), original.network().machine_count());
    assert_eq!(back.network().link_count(), original.network().link_count());
    // Deep equality of key entities.
    let l0 = back.network().link(VirtualLinkId::new(0));
    assert_eq!(l0.latency(), SimDuration::from_millis(120));
    assert_eq!(l0.start(), SimTime::from_mins(5));
    assert_eq!(back.item(DataItemId::new(0)), original.item(DataItemId::new(0)));
    assert_eq!(back.request(RequestId::new(0)), original.request(RequestId::new(0)));
    // Derived data survives (requests_for index is rebuilt/serialized).
    assert_eq!(back.requests_for(DataItemId::new(0)), original.requests_for(DataItemId::new(0)));
}

#[test]
fn newtypes_serialize_transparently() {
    // Times, sizes, and ids are raw numbers on the wire — stable, minimal
    // JSON for external consumers.
    assert_eq!(serde_json::to_string(&SimTime::from_secs(2)).unwrap(), "2000");
    assert_eq!(serde_json::to_string(&SimDuration::from_mins(1)).unwrap(), "60000");
    assert_eq!(serde_json::to_string(&Bytes::from_kib(1)).unwrap(), "1024");
    assert_eq!(serde_json::to_string(&BitsPerSec::from_kbps(10)).unwrap(), "10000");
    assert_eq!(serde_json::to_string(&MachineId::new(3)).unwrap(), "3");
    assert_eq!(serde_json::to_string(&Priority::HIGH).unwrap(), "2");
}

#[test]
fn priority_weights_roundtrip() {
    let w = PriorityWeights::paper_1_10_100();
    let json = serde_json::to_string(&w).unwrap();
    let back: PriorityWeights = serde_json::from_str(&json).unwrap();
    assert_eq!(back, w);
    assert_eq!(back.weight(Priority::HIGH), 100);
}

#[test]
fn generated_scenario_roundtrips() {
    // The real §5.3-scale payload survives serialization unchanged.
    let json = {
        let mut b = NetworkBuilder::new();
        for i in 0..3 {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(10)));
        }
        for i in 0..3u32 {
            b.add_link(VirtualLink::new(
                MachineId::new(i),
                MachineId::new((i + 1) % 3),
                SimTime::ZERO,
                SimTime::from_hours(1),
                BitsPerSec::from_kbps(100),
            ));
        }
        let s = Scenario::builder(b.build())
            .add_item(DataItem::new(
                "x",
                Bytes::from_kib(100),
                vec![DataSource::new(MachineId::new(0), SimTime::ZERO)],
            ))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(2),
                SimTime::from_mins(30),
                Priority::MEDIUM,
            ))
            .build()
            .unwrap();
        serde_json::to_string_pretty(&s).unwrap()
    };
    let back: Scenario = serde_json::from_str(&json).unwrap();
    let json2 = serde_json::to_string_pretty(&back).unwrap();
    assert_eq!(json, json2, "serialization must be a fixpoint");
}
