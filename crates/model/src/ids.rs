//! Typed indices for the entities of a scenario.
//!
//! Each id is a dense index into the owning collection (machines of a
//! [`crate::network::Network`], items/requests of a
//! [`crate::scenario::Scenario`]), wrapped in a newtype so the different
//! index spaces cannot be mixed up.

use core::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            #[must_use]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The dense index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a machine `M[i]` in the communication system.
    MachineId,
    "M"
);

define_id!(
    /// Identifies one *virtual* unidirectional link `L[i,j][k]`.
    ///
    /// Virtual links are numbered densely across the whole network, not per
    /// machine pair; the link itself records its endpoints.
    VirtualLinkId,
    "L"
);

define_id!(
    /// Identifies a named data item `δ[i]`.
    DataItemId,
    "d"
);

define_id!(
    /// Identifies one request `(Rq[j], k)` — a (data item, destination)
    /// pair with a deadline and priority.
    RequestId,
    "R"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_index() {
        assert_eq!(MachineId::new(3).index(), 3);
        assert_eq!(VirtualLinkId::new(7).index(), 7);
        assert_eq!(DataItemId::new(0).index(), 0);
        assert_eq!(RequestId::new(9).index(), 9);
        assert_eq!(usize::from(MachineId::new(5)), 5);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(MachineId::new(3).to_string(), "M3");
        assert_eq!(VirtualLinkId::new(1).to_string(), "L1");
        assert_eq!(DataItemId::new(2).to_string(), "d2");
        assert_eq!(RequestId::new(4).to_string(), "R4");
    }

    #[test]
    fn ids_are_distinct_types() {
        // Compile-time property: a MachineId cannot be compared with a
        // DataItemId. This test just exercises Eq/Ord within one type.
        let a = MachineId::new(1);
        let b = MachineId::new(2);
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn ids_are_hashable_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(RequestId::new(1), "x");
        assert_eq!(m.get(&RequestId::new(1)), Some(&"x"));
        assert_eq!(m.get(&RequestId::new(2)), None);
    }
}
