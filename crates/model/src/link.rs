//! Virtual communication links.
//!
//! A *physical* transmission link that is available during `nl` disjoint
//! time windows is modelled as `nl` *virtual* links `L[i,j][k]`, each with
//! one availability window `[Lst, Let)`, a bandwidth, and a latency
//! (paper §3). Bidirectional physical links are two sets of virtual links,
//! one per direction. A virtual link carries at most one transfer at a time.

use serde::{Deserialize, Serialize};

use crate::ids::MachineId;
use crate::time::{SimDuration, SimTime};
use crate::units::{BitsPerSec, Bytes};

/// One unidirectional virtual link `L[i,j][k]`.
///
/// # Examples
///
/// ```
/// use dstage_model::link::VirtualLink;
/// use dstage_model::ids::MachineId;
/// use dstage_model::time::{SimTime, SimDuration};
/// use dstage_model::units::{BitsPerSec, Bytes};
///
/// let link = VirtualLink::new(
///     MachineId::new(0),
///     MachineId::new(1),
///     SimTime::ZERO,
///     SimTime::from_hours(1),
///     BitsPerSec::from_kbps(100),
/// );
/// // 100 KiB over 100 Kbit/s: 819_200 bits / 100_000 bps = 8.192 s.
/// assert_eq!(
///     link.transfer_time(Bytes::from_kib(100)),
///     SimDuration::from_millis(8_192)
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualLink {
    source: MachineId,
    destination: MachineId,
    start: SimTime,
    end: SimTime,
    bandwidth: BitsPerSec,
    latency: SimDuration,
}

impl VirtualLink {
    /// Creates a virtual link with zero latency.
    ///
    /// # Panics
    ///
    /// Panics if `source == destination` (self-links are excluded by the
    /// model) or if `start >= end` (the window would be empty).
    #[must_use]
    pub fn new(
        source: MachineId,
        destination: MachineId,
        start: SimTime,
        end: SimTime,
        bandwidth: BitsPerSec,
    ) -> Self {
        Self::with_latency(source, destination, start, end, bandwidth, SimDuration::ZERO)
    }

    /// Creates a virtual link with an explicit per-transfer latency
    /// (the fixed component of the paper's `D[i,j][k](|d|)` overhead).
    ///
    /// # Panics
    ///
    /// Panics if `source == destination` or `start >= end`.
    #[must_use]
    pub fn with_latency(
        source: MachineId,
        destination: MachineId,
        start: SimTime,
        end: SimTime,
        bandwidth: BitsPerSec,
        latency: SimDuration,
    ) -> Self {
        assert!(source != destination, "a link must not originate and end at the same machine");
        assert!(start < end, "link availability window must be non-empty");
        VirtualLink { source, destination, start, end, bandwidth, latency }
    }

    /// The sending machine `M[i]`.
    #[must_use]
    pub fn source(&self) -> MachineId {
        self.source
    }

    /// The receiving machine `M[j]`.
    #[must_use]
    pub fn destination(&self) -> MachineId {
        self.destination
    }

    /// Link start time `Lst[i,j][k]` (inclusive).
    #[must_use]
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Link end time `Let[i,j][k]` (exclusive).
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.end
    }

    /// The link bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> BitsPerSec {
        self.bandwidth
    }

    /// The fixed per-transfer latency.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// The window length `Let - Lst`.
    #[must_use]
    pub fn window(&self) -> SimDuration {
        self.end - self.start
    }

    /// Total occupancy time for transferring `size` over this link:
    /// serialization delay plus latency (the paper's `D[i,j][k](|d|)`).
    #[must_use]
    pub fn transfer_time(&self, size: Bytes) -> SimDuration {
        self.bandwidth.serialization_delay(size).saturating_add(self.latency)
    }

    /// Whether a transfer of `size` fits in the window at all (ignoring
    /// any existing reservations).
    #[must_use]
    pub fn can_ever_carry(&self, size: Bytes) -> bool {
        self.transfer_time(size) <= self.window()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(bw_kbps: u64, window_secs: u64) -> VirtualLink {
        VirtualLink::new(
            MachineId::new(0),
            MachineId::new(1),
            SimTime::ZERO,
            SimTime::from_secs(window_secs),
            BitsPerSec::from_kbps(bw_kbps),
        )
    }

    #[test]
    fn accessors_return_constructor_values() {
        let l = VirtualLink::with_latency(
            MachineId::new(2),
            MachineId::new(5),
            SimTime::from_mins(1),
            SimTime::from_mins(31),
            BitsPerSec::from_kbps(64),
            SimDuration::from_millis(250),
        );
        assert_eq!(l.source(), MachineId::new(2));
        assert_eq!(l.destination(), MachineId::new(5));
        assert_eq!(l.start(), SimTime::from_mins(1));
        assert_eq!(l.end(), SimTime::from_mins(31));
        assert_eq!(l.bandwidth(), BitsPerSec::from_kbps(64));
        assert_eq!(l.latency(), SimDuration::from_millis(250));
        assert_eq!(l.window(), SimDuration::from_mins(30));
    }

    #[test]
    #[should_panic(expected = "same machine")]
    fn self_link_rejected() {
        let _ = VirtualLink::new(
            MachineId::new(1),
            MachineId::new(1),
            SimTime::ZERO,
            SimTime::from_secs(1),
            BitsPerSec::from_kbps(1),
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = VirtualLink::new(
            MachineId::new(0),
            MachineId::new(1),
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            BitsPerSec::from_kbps(1),
        );
    }

    #[test]
    fn transfer_time_adds_latency() {
        let l = VirtualLink::with_latency(
            MachineId::new(0),
            MachineId::new(1),
            SimTime::ZERO,
            SimTime::from_hours(1),
            BitsPerSec::new(8_000), // 1 byte/ms
            SimDuration::from_millis(100),
        );
        assert_eq!(l.transfer_time(Bytes::new(400)), SimDuration::from_millis(500));
    }

    #[test]
    fn can_ever_carry_respects_window() {
        // 1 byte/ms; 10 s window fits exactly 10_000 bytes.
        let l = link(8, 10);
        assert!(l.can_ever_carry(Bytes::new(10_000)));
        assert!(!l.can_ever_carry(Bytes::new(10_001)));
        assert!(l.can_ever_carry(Bytes::ZERO));
    }
}
