//! Data requests, priorities, and priority weightings.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{DataItemId, MachineId};
use crate::time::SimTime;

/// A request priority level: `0..=P`, where larger is more important
/// (`P` is the class of most important requests, paper §3).
///
/// The simulation study uses three levels; [`Priority::LOW`],
/// [`Priority::MEDIUM`], and [`Priority::HIGH`] name them, but any number
/// of levels is supported via [`Priority::new`].
///
/// # Examples
///
/// ```
/// use dstage_model::request::Priority;
///
/// assert!(Priority::HIGH > Priority::LOW);
/// assert_eq!(Priority::new(1), Priority::MEDIUM);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Priority(u8);

impl Priority {
    /// The lowest of the three standard levels (level 0).
    pub const LOW: Priority = Priority(0);
    /// The middle of the three standard levels (level 1).
    pub const MEDIUM: Priority = Priority(1);
    /// The highest of the three standard levels (level 2, the paper's `P`).
    pub const HIGH: Priority = Priority(2);

    /// Creates a priority from a raw level.
    #[must_use]
    pub const fn new(level: u8) -> Self {
        Priority(level)
    }

    /// The raw level.
    #[must_use]
    pub const fn level(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Priority::LOW => write!(f, "low"),
            Priority::MEDIUM => write!(f, "medium"),
            Priority::HIGH => write!(f, "high"),
            Priority(p) => write!(f, "p{p}"),
        }
    }
}

/// The relative weights `W[0..=P]` of the priority levels.
///
/// The simulation study compares the `1,5,10` and `1,10,100` weightings.
///
/// # Examples
///
/// ```
/// use dstage_model::request::{Priority, PriorityWeights};
///
/// let w = PriorityWeights::paper_1_10_100();
/// assert_eq!(w.weight(Priority::HIGH), 100);
/// assert_eq!(w.weight(Priority::LOW), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PriorityWeights {
    weights: Vec<u64>,
}

impl PriorityWeights {
    /// The paper's first weighting: low 1, medium 5, high 10.
    #[must_use]
    pub fn paper_1_5_10() -> Self {
        PriorityWeights::new(vec![1, 5, 10])
    }

    /// The paper's second weighting: low 1, medium 10, high 100.
    #[must_use]
    pub fn paper_1_10_100() -> Self {
        PriorityWeights::new(vec![1, 10, 100])
    }

    /// Creates a weighting from the weights of levels `0..=P`, in order.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    #[must_use]
    pub fn new(weights: Vec<u64>) -> Self {
        assert!(!weights.is_empty(), "at least one priority level is required");
        PriorityWeights { weights }
    }

    /// The number of priority levels (`P + 1`).
    #[must_use]
    pub fn levels(&self) -> u8 {
        self.weights.len() as u8
    }

    /// The highest priority `P`.
    #[must_use]
    pub fn highest(&self) -> Priority {
        Priority::new(self.levels() - 1)
    }

    /// The weight `W[p]` of a priority level.
    ///
    /// # Panics
    ///
    /// Panics if `p` exceeds the configured highest level.
    #[must_use]
    pub fn weight(&self, p: Priority) -> u64 {
        self.weights[p.level() as usize]
    }

    /// All levels from lowest to highest.
    pub fn priorities(&self) -> impl Iterator<Item = Priority> + '_ {
        (0..self.levels()).map(Priority::new)
    }
}

/// One data request: the `k`-th request for item `Rq[j]`, destined for
/// machine `Request[j,k]` with deadline `Rft[j,k]` and priority
/// `Priority[j,k]`.
///
/// # Examples
///
/// ```
/// use dstage_model::request::{Priority, Request};
/// use dstage_model::ids::{DataItemId, MachineId};
/// use dstage_model::time::SimTime;
///
/// let r = Request::new(
///     DataItemId::new(0),
///     MachineId::new(4),
///     SimTime::from_mins(45),
///     Priority::HIGH,
/// );
/// assert_eq!(r.destination(), MachineId::new(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    item: DataItemId,
    destination: MachineId,
    deadline: SimTime,
    priority: Priority,
}

impl Request {
    /// Creates a request.
    #[must_use]
    pub fn new(
        item: DataItemId,
        destination: MachineId,
        deadline: SimTime,
        priority: Priority,
    ) -> Self {
        Request { item, destination, deadline, priority }
    }

    /// The requested data item.
    #[must_use]
    pub fn item(&self) -> DataItemId {
        self.item
    }

    /// The requesting machine.
    #[must_use]
    pub fn destination(&self) -> MachineId {
        self.destination
    }

    /// The deadline `Rft` after which the item is no longer useful.
    #[must_use]
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// The request's priority.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// A point-to-multipoint request: one data item wanted at several
/// destinations under a common deadline and priority.
///
/// Satisfaction is **per-destination** — each destination that receives
/// the item by the deadline earns the full weight `W[p]` on its own —
/// but the transfers serving the group share upstream staged copies: a
/// hop into an intermediate machine is paid once and every downstream
/// destination reads from the staged copy. The scheduler models this by
/// expanding the group into one [`Request`] per destination
/// ([`P2mpRequest::expand`]); the shared-copy accounting falls out of
/// the copy tracker, which never re-stages an item a machine already
/// holds early enough.
///
/// # Examples
///
/// ```
/// use dstage_model::request::{P2mpRequest, Priority};
/// use dstage_model::ids::{DataItemId, MachineId};
/// use dstage_model::time::SimTime;
///
/// let group = P2mpRequest::new(
///     DataItemId::new(0),
///     vec![MachineId::new(3), MachineId::new(4)],
///     SimTime::from_mins(45),
///     Priority::HIGH,
/// );
/// assert_eq!(group.expand().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct P2mpRequest {
    item: DataItemId,
    destinations: Vec<MachineId>,
    deadline: SimTime,
    priority: Priority,
}

impl P2mpRequest {
    /// Creates a point-to-multipoint request.
    #[must_use]
    pub fn new(
        item: DataItemId,
        destinations: Vec<MachineId>,
        deadline: SimTime,
        priority: Priority,
    ) -> Self {
        P2mpRequest { item, destinations, deadline, priority }
    }

    /// The requested data item.
    #[must_use]
    pub fn item(&self) -> DataItemId {
        self.item
    }

    /// The requesting machines, in submission order.
    #[must_use]
    pub fn destinations(&self) -> &[MachineId] {
        &self.destinations
    }

    /// The common deadline `Rft` for every destination in the group.
    #[must_use]
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// The group's priority.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Expands the group into one single-destination [`Request`] per
    /// destination, in order.
    pub fn expand(&self) -> impl Iterator<Item = Request> + '_ {
        self.destinations
            .iter()
            .map(move |&d| Request::new(self.item, d, self.deadline, self.priority))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::LOW < Priority::MEDIUM);
        assert!(Priority::MEDIUM < Priority::HIGH);
        assert_eq!(Priority::new(2), Priority::HIGH);
        assert_eq!(Priority::HIGH.level(), 2);
    }

    #[test]
    fn priority_display() {
        assert_eq!(Priority::LOW.to_string(), "low");
        assert_eq!(Priority::MEDIUM.to_string(), "medium");
        assert_eq!(Priority::HIGH.to_string(), "high");
        assert_eq!(Priority::new(7).to_string(), "p7");
    }

    #[test]
    fn weights_lookup() {
        let w = PriorityWeights::new(vec![1, 10, 100]);
        assert_eq!(w.weight(Priority::LOW), 1);
        assert_eq!(w.weight(Priority::MEDIUM), 10);
        assert_eq!(w.weight(Priority::HIGH), 100);
        assert_eq!(w.levels(), 3);
        assert_eq!(w.highest(), Priority::HIGH);
    }

    #[test]
    fn weights_iterate_levels() {
        let w = PriorityWeights::new(vec![2, 4]);
        let levels: Vec<Priority> = w.priorities().collect();
        assert_eq!(levels, vec![Priority::new(0), Priority::new(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one priority level")]
    fn empty_weights_rejected() {
        let _ = PriorityWeights::new(vec![]);
    }

    #[test]
    fn p2mp_expands_in_destination_order() {
        let group = P2mpRequest::new(
            DataItemId::new(1),
            vec![MachineId::new(4), MachineId::new(2), MachineId::new(7)],
            SimTime::from_mins(40),
            Priority::HIGH,
        );
        let expanded: Vec<Request> = group.expand().collect();
        assert_eq!(expanded.len(), 3);
        for (req, &dest) in expanded.iter().zip(group.destinations()) {
            assert_eq!(req.item(), DataItemId::new(1));
            assert_eq!(req.destination(), dest);
            assert_eq!(req.deadline(), SimTime::from_mins(40));
            assert_eq!(req.priority(), Priority::HIGH);
        }
    }

    #[test]
    fn request_accessors() {
        let r = Request::new(
            DataItemId::new(2),
            MachineId::new(5),
            SimTime::from_mins(30),
            Priority::MEDIUM,
        );
        assert_eq!(r.item(), DataItemId::new(2));
        assert_eq!(r.destination(), MachineId::new(5));
        assert_eq!(r.deadline(), SimTime::from_mins(30));
        assert_eq!(r.priority(), Priority::MEDIUM);
    }
}
