//! Data items and their initial source locations.

use serde::{Deserialize, Serialize};

use crate::ids::MachineId;
use crate::time::SimTime;
use crate::units::Bytes;

/// One initial source location of a data item: the machine `Source[i,j]`
/// and the time `δst[i,j]` after which the item is available there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DataSource {
    /// Machine holding the initial copy.
    pub machine: MachineId,
    /// Time at which the copy becomes available (`δst`).
    pub available_at: SimTime,
}

impl DataSource {
    /// Creates a source location.
    #[must_use]
    pub fn new(machine: MachineId, available_at: SimTime) -> Self {
        DataSource { machine, available_at }
    }
}

/// A named data item `δ[i]`: a block of information with a size and one or
/// more initial source locations.
///
/// # Examples
///
/// ```
/// use dstage_model::data::{DataItem, DataSource};
/// use dstage_model::ids::MachineId;
/// use dstage_model::time::SimTime;
/// use dstage_model::units::Bytes;
///
/// let item = DataItem::new(
///     "weather-map-eu-1400z",
///     Bytes::from_mib(12),
///     vec![DataSource::new(MachineId::new(0), SimTime::from_mins(5))],
/// );
/// assert_eq!(item.sources().len(), 1);
/// assert_eq!(item.earliest_availability(), Some(SimTime::from_mins(5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataItem {
    name: String,
    size: Bytes,
    sources: Vec<DataSource>,
}

impl DataItem {
    /// Creates a data item.
    ///
    /// The unique-name invariant across items (`δ[i]` are distinct) is
    /// enforced at scenario level, not here. An item may temporarily have
    /// zero sources while a scenario is being assembled, but scenario
    /// validation rejects requested items without sources.
    #[must_use]
    pub fn new(name: impl Into<String>, size: Bytes, sources: Vec<DataSource>) -> Self {
        DataItem { name: name.into(), size, sources }
    }

    /// The item's unique name (identifier).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The item's size `|d|`.
    #[must_use]
    pub fn size(&self) -> Bytes {
        self.size
    }

    /// The initial source locations (`Source[i, 0..Nδ[i]]`).
    #[must_use]
    pub fn sources(&self) -> &[DataSource] {
        &self.sources
    }

    /// The earliest time the item is available anywhere, or `None` if the
    /// item has no sources.
    #[must_use]
    pub fn earliest_availability(&self) -> Option<SimTime> {
        self.sources.iter().map(|s| s.available_at).min()
    }

    /// Whether `machine` is one of the item's initial sources.
    #[must_use]
    pub fn has_source(&self, machine: MachineId) -> bool {
        self.sources.iter().any(|s| s.machine == machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item() -> DataItem {
        DataItem::new(
            "d",
            Bytes::from_kib(64),
            vec![
                DataSource::new(MachineId::new(3), SimTime::from_mins(10)),
                DataSource::new(MachineId::new(1), SimTime::from_mins(2)),
            ],
        )
    }

    #[test]
    fn accessors() {
        let it = item();
        assert_eq!(it.name(), "d");
        assert_eq!(it.size(), Bytes::from_kib(64));
        assert_eq!(it.sources().len(), 2);
    }

    #[test]
    fn earliest_availability_is_min_over_sources() {
        assert_eq!(item().earliest_availability(), Some(SimTime::from_mins(2)));
        let empty = DataItem::new("x", Bytes::ZERO, vec![]);
        assert_eq!(empty.earliest_availability(), None);
    }

    #[test]
    fn has_source_checks_membership() {
        let it = item();
        assert!(it.has_source(MachineId::new(1)));
        assert!(it.has_source(MachineId::new(3)));
        assert!(!it.has_source(MachineId::new(0)));
    }
}
