//! The network topology graph `G_nt`.
//!
//! A [`Network`] owns the machines and the virtual links and provides the
//! adjacency views the path-finding layer needs. Connectivity utilities
//! (strong connectivity via Tarjan's algorithm) operate on the *static*
//! graph — the union of all virtual links, ignoring time windows — which is
//! the sense in which the paper's generator guarantees strong connectivity.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::ids::{MachineId, VirtualLinkId};
use crate::link::VirtualLink;
use crate::machine::{Machine, MachineRef};

/// The communication system: machines plus virtual links, with adjacency
/// indexes for efficient traversal.
///
/// # Examples
///
/// ```
/// use dstage_model::network::NetworkBuilder;
/// use dstage_model::machine::Machine;
/// use dstage_model::link::VirtualLink;
/// use dstage_model::units::{Bytes, BitsPerSec};
/// use dstage_model::time::SimTime;
///
/// let mut b = NetworkBuilder::new();
/// let a = b.add_machine(Machine::new("a", Bytes::from_mib(10)));
/// let c = b.add_machine(Machine::new("c", Bytes::from_mib(10)));
/// b.add_link(VirtualLink::new(a, c, SimTime::ZERO, SimTime::from_hours(1),
///     BitsPerSec::from_kbps(56)));
/// b.add_link(VirtualLink::new(c, a, SimTime::ZERO, SimTime::from_hours(1),
///     BitsPerSec::from_kbps(56)));
/// let net = b.build();
/// assert_eq!(net.machine_count(), 2);
/// assert!(net.is_strongly_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    machines: Vec<Machine>,
    links: Vec<VirtualLink>,
    /// Outgoing virtual links per machine, sorted by id.
    out_links: Vec<Vec<VirtualLinkId>>,
    /// Incoming virtual links per machine, sorted by id.
    in_links: Vec<Vec<VirtualLinkId>>,
}

impl Network {
    /// Number of machines `m`.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of virtual links (directed edges of `G_nt`).
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Looks up a machine.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this network.
    #[must_use]
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.index()]
    }

    /// Looks up a virtual link.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this network.
    #[must_use]
    pub fn link(&self, id: VirtualLinkId) -> &VirtualLink {
        &self.links[id.index()]
    }

    /// Iterates over all machines with their ids.
    pub fn machines(&self) -> impl Iterator<Item = MachineRef<'_>> + '_ {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| MachineRef { id: MachineId::new(i as u32), machine: m })
    }

    /// Iterates over all machine ids.
    pub fn machine_ids(&self) -> impl Iterator<Item = MachineId> + 'static {
        (0..self.machines.len() as u32).map(MachineId::new)
    }

    /// Iterates over all virtual links with their ids.
    pub fn links(&self) -> impl Iterator<Item = (VirtualLinkId, &VirtualLink)> + '_ {
        self.links.iter().enumerate().map(|(i, l)| (VirtualLinkId::new(i as u32), l))
    }

    /// The ids of virtual links leaving `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this network.
    #[must_use]
    pub fn outgoing(&self, machine: MachineId) -> &[VirtualLinkId] {
        &self.out_links[machine.index()]
    }

    /// The ids of virtual links arriving at `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this network.
    #[must_use]
    pub fn incoming(&self, machine: MachineId) -> &[VirtualLinkId] {
        &self.in_links[machine.index()]
    }

    /// The distinct machines directly reachable from `machine` through at
    /// least one virtual link (the *outbound degree* neighbours of §5.3).
    #[must_use]
    pub fn neighbors(&self, machine: MachineId) -> Vec<MachineId> {
        let set: BTreeSet<MachineId> =
            self.outgoing(machine).iter().map(|&l| self.link(l).destination()).collect();
        set.into_iter().collect()
    }

    /// Whether the static graph (union of all virtual links) is strongly
    /// connected: every machine can reach every other machine through some
    /// sequence of physical transmission links.
    ///
    /// The empty network and the single-machine network count as strongly
    /// connected.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.machine_count();
        if n <= 1 {
            return true;
        }
        self.strongly_connected_components().len() == 1
    }

    /// Tarjan's strongly-connected-components algorithm on the static graph.
    ///
    /// Components are returned in reverse topological order (Tarjan's
    /// natural output order); each component lists its machines in the order
    /// they were popped.
    #[must_use]
    pub fn strongly_connected_components(&self) -> Vec<Vec<MachineId>> {
        // Iterative Tarjan to avoid recursion limits (irrelevant at m<=12,
        // but the routine is also used by tests on larger synthetic graphs).
        const UNVISITED: usize = usize::MAX;
        let n = self.machine_count();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components = Vec::new();

        // Explicit DFS state: (node, next-neighbour-cursor).
        let mut work: Vec<(usize, usize)> = Vec::new();
        // Pre-resolve neighbour lists as machine indices.
        let succ: Vec<Vec<usize>> = (0..n)
            .map(|u| {
                let mut s: Vec<usize> =
                    self.out_links[u].iter().map(|&l| self.link(l).destination().index()).collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();

        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            work.push((start, 0));
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
                if *cursor < succ[v].len() {
                    let w = succ[v][*cursor];
                    *cursor += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        work.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component.push(MachineId::new(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
        components
    }
}

/// Incremental constructor for [`Network`].
///
/// Machines must be added before links that reference them; `build`
/// validates every link endpoint.
#[derive(Debug, Default, Clone)]
pub struct NetworkBuilder {
    machines: Vec<Machine>,
    links: Vec<VirtualLink>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Adds a machine and returns its id.
    pub fn add_machine(&mut self, machine: Machine) -> MachineId {
        let id = MachineId::new(self.machines.len() as u32);
        self.machines.push(machine);
        id
    }

    /// Adds a virtual link and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint has not been added yet.
    pub fn add_link(&mut self, link: VirtualLink) -> VirtualLinkId {
        let m = self.machines.len();
        assert!(
            link.source().index() < m && link.destination().index() < m,
            "link endpoints must refer to machines already added to the builder"
        );
        let id = VirtualLinkId::new(self.links.len() as u32);
        self.links.push(link);
        id
    }

    /// Number of machines added so far.
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Finalizes the network, computing adjacency indexes.
    #[must_use]
    pub fn build(self) -> Network {
        let n = self.machines.len();
        let mut out_links = vec![Vec::new(); n];
        let mut in_links = vec![Vec::new(); n];
        for (i, link) in self.links.iter().enumerate() {
            let id = VirtualLinkId::new(i as u32);
            out_links[link.source().index()].push(id);
            in_links[link.destination().index()].push(id);
        }
        Network { machines: self.machines, links: self.links, out_links, in_links }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::units::{BitsPerSec, Bytes};

    fn quick_link(a: u32, b: u32) -> VirtualLink {
        VirtualLink::new(
            MachineId::new(a),
            MachineId::new(b),
            SimTime::ZERO,
            SimTime::from_hours(1),
            BitsPerSec::from_kbps(56),
        )
    }

    fn machines(b: &mut NetworkBuilder, count: usize) {
        for i in 0..count {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(100)));
        }
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = NetworkBuilder::new();
        let a = b.add_machine(Machine::new("a", Bytes::ZERO));
        let c = b.add_machine(Machine::new("c", Bytes::ZERO));
        assert_eq!(a, MachineId::new(0));
        assert_eq!(c, MachineId::new(1));
        let l0 = b.add_link(quick_link(0, 1));
        let l1 = b.add_link(quick_link(1, 0));
        assert_eq!(l0, VirtualLinkId::new(0));
        assert_eq!(l1, VirtualLinkId::new(1));
    }

    #[test]
    #[should_panic(expected = "already added")]
    fn builder_rejects_dangling_link() {
        let mut b = NetworkBuilder::new();
        machines(&mut b, 1);
        b.add_link(quick_link(0, 3));
    }

    #[test]
    fn adjacency_indexes_out_and_in() {
        let mut b = NetworkBuilder::new();
        machines(&mut b, 3);
        b.add_link(quick_link(0, 1));
        b.add_link(quick_link(0, 2));
        b.add_link(quick_link(1, 2));
        let net = b.build();
        assert_eq!(net.outgoing(MachineId::new(0)).len(), 2);
        assert_eq!(net.outgoing(MachineId::new(1)).len(), 1);
        assert_eq!(net.outgoing(MachineId::new(2)).len(), 0);
        assert_eq!(net.incoming(MachineId::new(2)).len(), 2);
        assert_eq!(net.incoming(MachineId::new(0)).len(), 0);
    }

    #[test]
    fn neighbors_deduplicates_parallel_virtual_links() {
        let mut b = NetworkBuilder::new();
        machines(&mut b, 2);
        // Two virtual links over the same physical pair.
        b.add_link(quick_link(0, 1));
        b.add_link(quick_link(0, 1));
        let net = b.build();
        assert_eq!(net.neighbors(MachineId::new(0)), vec![MachineId::new(1)]);
    }

    #[test]
    fn two_cycle_is_strongly_connected() {
        let mut b = NetworkBuilder::new();
        machines(&mut b, 2);
        b.add_link(quick_link(0, 1));
        b.add_link(quick_link(1, 0));
        assert!(b.build().is_strongly_connected());
    }

    #[test]
    fn one_way_pair_is_not_strongly_connected() {
        let mut b = NetworkBuilder::new();
        machines(&mut b, 2);
        b.add_link(quick_link(0, 1));
        let net = b.build();
        assert!(!net.is_strongly_connected());
        assert_eq!(net.strongly_connected_components().len(), 2);
    }

    #[test]
    fn trivial_networks_are_strongly_connected() {
        let b = NetworkBuilder::new();
        assert!(b.build().is_strongly_connected());
        let mut b = NetworkBuilder::new();
        machines(&mut b, 1);
        assert!(b.build().is_strongly_connected());
    }

    #[test]
    fn tarjan_finds_two_components_with_bridge() {
        // {0,1} strongly connected, {2,3} strongly connected, bridge 1->2.
        let mut b = NetworkBuilder::new();
        machines(&mut b, 4);
        b.add_link(quick_link(0, 1));
        b.add_link(quick_link(1, 0));
        b.add_link(quick_link(2, 3));
        b.add_link(quick_link(3, 2));
        b.add_link(quick_link(1, 2));
        let net = b.build();
        let mut comps: Vec<Vec<usize>> = net
            .strongly_connected_components()
            .into_iter()
            .map(|c| {
                let mut v: Vec<usize> = c.into_iter().map(MachineId::index).collect();
                v.sort_unstable();
                v
            })
            .collect();
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn tarjan_handles_long_cycle() {
        let n = 50;
        let mut b = NetworkBuilder::new();
        machines(&mut b, n);
        for i in 0..n as u32 {
            b.add_link(quick_link(i, (i + 1) % n as u32));
        }
        let net = b.build();
        assert!(net.is_strongly_connected());
        assert_eq!(net.strongly_connected_components().len(), 1);
    }

    #[test]
    fn machines_iterator_pairs_ids() {
        let mut b = NetworkBuilder::new();
        machines(&mut b, 3);
        let net = b.build();
        let names: Vec<(usize, String)> =
            net.machines().map(|r| (r.id.index(), r.machine.name().to_string())).collect();
        assert_eq!(names, vec![(0, "m0".into()), (1, "m1".into()), (2, "m2".into())]);
    }
}
