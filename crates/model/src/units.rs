//! Data sizes and link bandwidths.
//!
//! Newtypes keep byte counts and bit rates from being confused with each
//! other or with raw integers, and centralize the single place where a
//! transfer time is derived from a size and a bandwidth.

use core::fmt;
use core::iter::Sum;
use core::ops::Add;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A data size in bytes (the paper's `|d|`).
///
/// # Examples
///
/// ```
/// use dstage_model::units::Bytes;
///
/// assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
/// assert_eq!(Bytes::from_kib(10).as_u64(), 10_240);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Bytes(u64);

/// A link bandwidth in bits per second.
///
/// # Examples
///
/// ```
/// use dstage_model::units::BitsPerSec;
///
/// assert_eq!(BitsPerSec::from_kbps(10).as_u64(), 10_000);
/// assert_eq!(BitsPerSec::from_mbps(1).as_u64(), 1_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BitsPerSec(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a size from binary kilobytes (KiB).
    #[must_use]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1_024)
    }

    /// Creates a size from binary megabytes (MiB).
    #[must_use]
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1_024 * 1_024)
    }

    /// Creates a size from binary gigabytes (GiB).
    #[must_use]
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1_024 * 1_024 * 1_024)
    }

    /// The raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The size in bits.
    #[must_use]
    pub const fn bits(self) -> u128 {
        self.0 as u128 * 8
    }

    /// Saturating subtraction; clamps at zero.
    #[must_use]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    #[must_use]
    pub fn checked_add(self, other: Bytes) -> Option<Bytes> {
        self.0.checked_add(other.0).map(Bytes)
    }
}

impl BitsPerSec {
    /// Creates a bandwidth from bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero: a zero-bandwidth link can never carry data
    /// and would make transfer times undefined.
    #[must_use]
    pub fn new(bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        BitsPerSec(bps)
    }

    /// Creates a bandwidth from kilobits per second (10^3 bits).
    #[must_use]
    pub fn from_kbps(kbps: u64) -> Self {
        BitsPerSec::new(kbps * 1_000)
    }

    /// Creates a bandwidth from megabits per second (10^6 bits).
    #[must_use]
    pub fn from_mbps(mbps: u64) -> Self {
        BitsPerSec::new(mbps * 1_000_000)
    }

    /// The raw bits-per-second value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The time needed to push `size` through this link, rounded up to the
    /// next millisecond (the model's time quantum).
    ///
    /// This is the pure serialization delay; per-link latency is added by
    /// the caller (see `VirtualLink::transfer_time`).
    ///
    /// # Examples
    ///
    /// ```
    /// use dstage_model::units::{BitsPerSec, Bytes};
    /// use dstage_model::time::SimDuration;
    ///
    /// // 1000 bits over 1000 bit/s = exactly one second.
    /// let bw = BitsPerSec::new(1_000);
    /// assert_eq!(bw.serialization_delay(Bytes::new(125)), SimDuration::from_secs(1));
    /// // 1 extra bit rounds up to the next millisecond.
    /// assert_eq!(
    ///     bw.serialization_delay(Bytes::new(126)),
    ///     SimDuration::from_millis(1_008)
    /// );
    /// ```
    #[must_use]
    pub fn serialization_delay(self, size: Bytes) -> SimDuration {
        let bits = size.bits();
        let bps = self.0 as u128;
        // ceil(bits * 1000 / bps) milliseconds.
        let ms = (bits * 1_000).div_ceil(bps);
        SimDuration::from_millis(u64::try_from(ms).unwrap_or(u64::MAX))
    }
}

impl Add for Bytes {
    type Output = Bytes;

    /// # Panics
    ///
    /// Panics on overflow in debug builds.
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1_024;
        const MIB: u64 = 1_024 * 1_024;
        const GIB: u64 = 1_024 * 1_024 * 1_024;
        if self.0 >= GIB && self.0.is_multiple_of(GIB) {
            write!(f, "{}GiB", self.0 / GIB)
        } else if self.0 >= MIB && self.0.is_multiple_of(MIB) {
            write!(f, "{}MiB", self.0 / MIB)
        } else if self.0 >= KIB && self.0.is_multiple_of(KIB) {
            write!(f, "{}KiB", self.0 / KIB)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for BitsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbit/s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}Kbit/s", self.0 / 1_000)
        } else {
            write!(f, "{}bit/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors_scale_binary() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1_024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1_048_576);
        assert_eq!(Bytes::from_gib(1).as_u64(), 1_073_741_824);
    }

    #[test]
    fn bandwidth_constructors_scale_decimal() {
        assert_eq!(BitsPerSec::from_kbps(10).as_u64(), 10_000);
        assert_eq!(BitsPerSec::from_mbps(2).as_u64(), 2_000_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = BitsPerSec::new(0);
    }

    #[test]
    fn serialization_delay_exact_division() {
        // 1 MB over 1 Mbit/s: 8_388_608 bits / 1e6 bps = 8.388608 s -> ceil ms.
        let d = BitsPerSec::from_mbps(1).serialization_delay(Bytes::from_mib(1));
        assert_eq!(d, SimDuration::from_millis(8_389));
    }

    #[test]
    fn serialization_delay_rounds_up() {
        let bw = BitsPerSec::new(8_000); // 1 byte per ms
        assert_eq!(bw.serialization_delay(Bytes::new(10)), SimDuration::from_millis(10));
        let bw = BitsPerSec::new(8_001);
        assert_eq!(bw.serialization_delay(Bytes::new(10)), SimDuration::from_millis(10));
        let bw = BitsPerSec::new(7_999);
        assert_eq!(bw.serialization_delay(Bytes::new(10)), SimDuration::from_millis(11));
    }

    #[test]
    fn serialization_delay_zero_size_is_zero() {
        let bw = BitsPerSec::from_kbps(10);
        assert_eq!(bw.serialization_delay(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn paper_scale_transfer_times() {
        // Largest item over slowest paper link: 100 MB over 10 Kbit/s.
        let d = BitsPerSec::from_kbps(10).serialization_delay(Bytes::from_mib(100));
        // 838_860_800 bits / 10_000 bps = 83_886.08 s ≈ 23.3 hours.
        assert_eq!(d.as_millis(), 83_886_080);
        // Smallest item over fastest paper link: 10 KB over 1.5 Mbit/s.
        let d = BitsPerSec::new(1_500_000).serialization_delay(Bytes::from_kib(10));
        assert_eq!(d.as_millis(), 55); // 81_920 bits / 1.5e6 bps = 54.6 ms
    }

    #[test]
    fn bytes_sum_and_saturating_sub() {
        let total: Bytes = [Bytes::new(1), Bytes::new(2), Bytes::new(3)].into_iter().sum();
        assert_eq!(total, Bytes::new(6));
        assert_eq!(Bytes::new(5).saturating_sub(Bytes::new(9)), Bytes::ZERO);
        assert_eq!(Bytes::new(9).saturating_sub(Bytes::new(5)), Bytes::new(4));
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(Bytes::from_gib(20).to_string(), "20GiB");
        assert_eq!(Bytes::from_mib(3).to_string(), "3MiB");
        assert_eq!(Bytes::new(1_025).to_string(), "1025B");
        assert_eq!(BitsPerSec::from_kbps(1_500).to_string(), "1500Kbit/s");
        assert_eq!(BitsPerSec::from_mbps(2).to_string(), "2Mbit/s");
        assert_eq!(BitsPerSec::new(42).to_string(), "42bit/s");
    }
}
