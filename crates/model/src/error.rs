//! Scenario validation errors.

use core::fmt;
use std::error::Error;

use crate::ids::{DataItemId, MachineId, RequestId};

/// Reasons a scenario fails validation (paper §3 invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// Two data items share a name; names are the items' identifiers.
    DuplicateItemName {
        /// The offending name.
        name: String,
        /// The first item with the name.
        first: DataItemId,
        /// The second item with the name.
        second: DataItemId,
    },
    /// A request references an item id outside the item table.
    UnknownItem {
        /// The offending request.
        request: RequestId,
        /// The out-of-range item id.
        item: DataItemId,
    },
    /// A request or source references a machine outside the network.
    UnknownMachine {
        /// The out-of-range machine id.
        machine: MachineId,
        /// Where it was referenced.
        context: &'static str,
    },
    /// A requested item has no initial sources (it cannot exist anywhere).
    RequestedItemWithoutSources {
        /// The item lacking sources.
        item: DataItemId,
    },
    /// A machine both holds the item initially and requests it
    /// (`V_S[i] ∩ V_D[i] = ∅` is assumed by the model).
    SourceIsDestination {
        /// The offending request.
        request: RequestId,
        /// The machine that is both source and destination.
        machine: MachineId,
    },
    /// The same machine requests the same item twice ("a given machine
    /// generates at most one request for a given data item").
    DuplicateRequest {
        /// The first request.
        first: RequestId,
        /// The duplicate.
        second: RequestId,
    },
    /// An item lists the same machine as a source twice.
    DuplicateSource {
        /// The item with the duplicated source.
        item: DataItemId,
        /// The machine listed twice.
        machine: MachineId,
    },
    /// A point-to-multipoint request has no destinations.
    EmptyP2mpGroup {
        /// Index of the offending group, in submission order.
        group: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::DuplicateItemName { name, first, second } => {
                write!(f, "data items {first} and {second} share the name {name:?}")
            }
            ScenarioError::UnknownItem { request, item } => {
                write!(f, "request {request} references unknown data item {item}")
            }
            ScenarioError::UnknownMachine { machine, context } => {
                write!(f, "{context} references unknown machine {machine}")
            }
            ScenarioError::RequestedItemWithoutSources { item } => {
                write!(f, "requested data item {item} has no initial sources")
            }
            ScenarioError::SourceIsDestination { request, machine } => {
                write!(f, "request {request}: machine {machine} is both source and destination")
            }
            ScenarioError::DuplicateRequest { first, second } => {
                write!(f, "requests {first} and {second} are duplicates (same item, same machine)")
            }
            ScenarioError::DuplicateSource { item, machine } => {
                write!(f, "data item {item} lists machine {machine} as a source twice")
            }
            ScenarioError::EmptyP2mpGroup { group } => {
                write!(f, "point-to-multipoint request {group} has no destinations")
            }
        }
    }
}

impl Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ScenarioError::RequestedItemWithoutSources { item: DataItemId::new(3) };
        assert_eq!(e.to_string(), "requested data item d3 has no initial sources");
        let e = ScenarioError::SourceIsDestination {
            request: RequestId::new(1),
            machine: MachineId::new(2),
        };
        assert!(e.to_string().contains("R1"));
        assert!(e.to_string().contains("M2"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &(dyn Error + Send + Sync)) {}
        let e = ScenarioError::UnknownMachine { machine: MachineId::new(9), context: "request" };
        takes_err(&e);
    }
}
