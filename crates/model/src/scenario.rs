//! A complete data staging problem instance.
//!
//! A [`Scenario`] bundles the network, the data-location table (items with
//! sources), the data-request table, the garbage-collection delay `γ`, and
//! the scheduling horizon, and validates the paper's §3 invariants.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::data::DataItem;
use crate::error::ScenarioError;
use crate::ids::{DataItemId, MachineId, RequestId};
use crate::network::Network;
use crate::request::{P2mpRequest, Request};
use crate::time::{SimDuration, SimTime};

/// A validated data staging problem instance.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use dstage_model::prelude::*;
///
/// let mut b = NetworkBuilder::new();
/// let src = b.add_machine(Machine::new("src", Bytes::from_mib(64)));
/// let dst = b.add_machine(Machine::new("dst", Bytes::from_mib(64)));
/// b.add_link(VirtualLink::new(src, dst, SimTime::ZERO, SimTime::from_hours(1),
///     BitsPerSec::from_kbps(128)));
/// b.add_link(VirtualLink::new(dst, src, SimTime::ZERO, SimTime::from_hours(1),
///     BitsPerSec::from_kbps(128)));
///
/// let item = DataItem::new("map", Bytes::from_kib(100),
///     vec![DataSource::new(src, SimTime::ZERO)]);
/// let scenario = Scenario::builder(b.build())
///     .add_item(item)
///     .add_request(Request::new(DataItemId::new(0), dst,
///         SimTime::from_mins(30), Priority::HIGH))
///     .build()?;
/// assert_eq!(scenario.request_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    network: Network,
    items: Vec<DataItem>,
    requests: Vec<Request>,
    /// Requests grouped by item, precomputed.
    requests_by_item: Vec<Vec<RequestId>>,
    /// Point-to-multipoint groups: each inner vector lists the expanded
    /// per-destination requests of one [`P2mpRequest`]. `None` when the
    /// scenario has no P2MP requests, and skipped on serialization, so
    /// pre-P2MP scenario files round-trip byte-identically.
    #[serde(skip_serializing_if = "Option::is_none")]
    p2mp_groups: Option<Vec<Vec<RequestId>>>,
    gc_delay: SimDuration,
    horizon: SimTime,
}

impl Scenario {
    /// Starts building a scenario on `network`.
    #[must_use]
    pub fn builder(network: Network) -> ScenarioBuilder {
        ScenarioBuilder {
            network,
            items: Vec::new(),
            requests: Vec::new(),
            p2mp_groups: Vec::new(),
            gc_delay: SimDuration::from_mins(6), // the paper's γ
            horizon: SimTime::from_hours(2),     // the paper's effective duration
        }
    }

    /// The communication system.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Number of distinct data items `n`.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Number of requests (Σ over items of `Nrq`).
    #[must_use]
    pub fn request_count(&self) -> usize {
        self.requests.len()
    }

    /// Looks up a data item.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn item(&self, id: DataItemId) -> &DataItem {
        &self.items[id.index()]
    }

    /// Looks up a request.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn request(&self, id: RequestId) -> &Request {
        &self.requests[id.index()]
    }

    /// Iterates over all items with their ids.
    pub fn items(&self) -> impl Iterator<Item = (DataItemId, &DataItem)> + '_ {
        self.items.iter().enumerate().map(|(i, d)| (DataItemId::new(i as u32), d))
    }

    /// Iterates over all item ids.
    pub fn item_ids(&self) -> impl Iterator<Item = DataItemId> + 'static {
        (0..self.items.len() as u32).map(DataItemId::new)
    }

    /// Iterates over all requests with their ids.
    pub fn requests(&self) -> impl Iterator<Item = (RequestId, &Request)> + '_ {
        self.requests.iter().enumerate().map(|(i, r)| (RequestId::new(i as u32), r))
    }

    /// Iterates over all request ids.
    pub fn request_ids(&self) -> impl Iterator<Item = RequestId> + 'static {
        (0..self.requests.len() as u32).map(RequestId::new)
    }

    /// The requests for a given item (`Request[j, 0..Nrq[j]]`).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn requests_for(&self, item: DataItemId) -> &[RequestId] {
        &self.requests_by_item[item.index()]
    }

    /// The point-to-multipoint groups: each slice element lists the
    /// expanded per-destination request ids of one group, in submission
    /// order. Empty for scenarios without P2MP requests.
    ///
    /// Satisfaction stays per-request — every satisfied destination earns
    /// its own `W[p]` — so the groups carry no scheduling semantics of
    /// their own; they record which requests share an upstream intent and
    /// let reports aggregate per-group outcomes.
    #[must_use]
    pub fn p2mp_groups(&self) -> &[Vec<RequestId>] {
        self.p2mp_groups.as_deref().unwrap_or(&[])
    }

    /// The garbage-collection delay `γ`: intermediate copies of an item are
    /// reclaimed `γ` after the item's latest deadline (paper §4.4).
    #[must_use]
    pub fn gc_delay(&self) -> SimDuration {
        self.gc_delay
    }

    /// End of the scheduling horizon; sources and destinations hold their
    /// copies until this time.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// The latest deadline among the requests for `item`, or `None` if the
    /// item is not requested.
    #[must_use]
    pub fn latest_deadline(&self, item: DataItemId) -> Option<SimTime> {
        self.requests_for(item).iter().map(|&r| self.request(r).deadline()).max()
    }

    /// The garbage-collection time for `item` on intermediate machines:
    /// `latest deadline + γ`, capped at the horizon. Unrequested items are
    /// never staged, so they have no GC time.
    #[must_use]
    pub fn gc_time(&self, item: DataItemId) -> Option<SimTime> {
        self.latest_deadline(item).map(|d| (d + self.gc_delay).min(self.horizon))
    }
}

/// Builder for [`Scenario`]; see [`Scenario::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    network: Network,
    items: Vec<DataItem>,
    requests: Vec<Request>,
    p2mp_groups: Vec<Vec<RequestId>>,
    gc_delay: SimDuration,
    horizon: SimTime,
}

impl ScenarioBuilder {
    /// Adds a data item and returns its id.
    pub fn add_item(mut self, item: DataItem) -> Self {
        self.items.push(item);
        self
    }

    /// Adds a request.
    pub fn add_request(mut self, request: Request) -> Self {
        self.requests.push(request);
        self
    }

    /// Adds several requests.
    pub fn add_requests(mut self, requests: impl IntoIterator<Item = Request>) -> Self {
        self.requests.extend(requests);
        self
    }

    /// Adds a point-to-multipoint request: it expands into one
    /// per-destination [`Request`] (so the heuristics need no special
    /// casing) and the expanded ids are recorded as a group retrievable
    /// via [`Scenario::p2mp_groups`]. A duplicate destination within the
    /// group surfaces as [`ScenarioError::DuplicateRequest`] at build
    /// time; an empty destination set as
    /// [`ScenarioError::EmptyP2mpGroup`].
    pub fn add_p2mp_request(mut self, p2mp: &P2mpRequest) -> Self {
        let first = self.requests.len() as u32;
        self.requests.extend(p2mp.expand());
        let ids = (first..self.requests.len() as u32).map(RequestId::new).collect();
        self.p2mp_groups.push(ids);
        self
    }

    /// Overrides the garbage-collection delay `γ` (default: 6 minutes).
    #[must_use]
    pub fn gc_delay(mut self, gamma: SimDuration) -> Self {
        self.gc_delay = gamma;
        self
    }

    /// Overrides the scheduling horizon (default: 2 hours).
    #[must_use]
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Validates the invariants of paper §3 and produces the scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if item names collide, any referenced
    /// machine or item id is out of range, a requested item has no sources,
    /// a machine is both source and destination of the same item, a machine
    /// requests the same item twice, an item lists a source twice, or a
    /// point-to-multipoint request has no destinations.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let m = self.network.machine_count();

        let mut names: HashMap<&str, DataItemId> = HashMap::new();
        for (i, item) in self.items.iter().enumerate() {
            let id = DataItemId::new(i as u32);
            if let Some(&first) = names.get(item.name()) {
                return Err(ScenarioError::DuplicateItemName {
                    name: item.name().to_string(),
                    first,
                    second: id,
                });
            }
            names.insert(item.name(), id);
            let mut seen = Vec::new();
            for src in item.sources() {
                if src.machine.index() >= m {
                    return Err(ScenarioError::UnknownMachine {
                        machine: src.machine,
                        context: "data item source",
                    });
                }
                if seen.contains(&src.machine) {
                    return Err(ScenarioError::DuplicateSource { item: id, machine: src.machine });
                }
                seen.push(src.machine);
            }
        }

        let mut requests_by_item = vec![Vec::new(); self.items.len()];
        let mut seen_pairs: HashMap<(DataItemId, MachineId), RequestId> = HashMap::new();
        for (i, req) in self.requests.iter().enumerate() {
            let id = RequestId::new(i as u32);
            if req.item().index() >= self.items.len() {
                return Err(ScenarioError::UnknownItem { request: id, item: req.item() });
            }
            if req.destination().index() >= m {
                return Err(ScenarioError::UnknownMachine {
                    machine: req.destination(),
                    context: "request destination",
                });
            }
            let item = &self.items[req.item().index()];
            if item.sources().is_empty() {
                return Err(ScenarioError::RequestedItemWithoutSources { item: req.item() });
            }
            if item.has_source(req.destination()) {
                return Err(ScenarioError::SourceIsDestination {
                    request: id,
                    machine: req.destination(),
                });
            }
            if let Some(&first) = seen_pairs.get(&(req.item(), req.destination())) {
                return Err(ScenarioError::DuplicateRequest { first, second: id });
            }
            seen_pairs.insert((req.item(), req.destination()), id);
            requests_by_item[req.item().index()].push(id);
        }

        for (gi, group) in self.p2mp_groups.iter().enumerate() {
            if group.is_empty() {
                return Err(ScenarioError::EmptyP2mpGroup { group: gi });
            }
        }

        Ok(Scenario {
            network: self.network,
            items: self.items,
            requests: self.requests,
            requests_by_item,
            p2mp_groups: if self.p2mp_groups.is_empty() { None } else { Some(self.p2mp_groups) },
            gc_delay: self.gc_delay,
            horizon: self.horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataSource;
    use crate::link::VirtualLink;
    use crate::machine::Machine;
    use crate::request::Priority;
    use crate::units::{BitsPerSec, Bytes};

    fn net(n: usize) -> Network {
        let mut b = crate::network::NetworkBuilder::new();
        for i in 0..n {
            b.add_machine(Machine::new(format!("m{i}"), Bytes::from_mib(100)));
        }
        for i in 0..n as u32 {
            let j = (i + 1) % n as u32;
            b.add_link(VirtualLink::new(
                MachineId::new(i),
                MachineId::new(j),
                SimTime::ZERO,
                SimTime::from_hours(2),
                BitsPerSec::from_kbps(100),
            ));
        }
        b.build()
    }

    fn item_at(src: u32) -> DataItem {
        DataItem::new(
            format!("item-src{src}"),
            Bytes::from_kib(10),
            vec![DataSource::new(MachineId::new(src), SimTime::ZERO)],
        )
    }

    #[test]
    fn build_valid_scenario() {
        let s = Scenario::builder(net(3))
            .add_item(item_at(0))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(2),
                SimTime::from_mins(30),
                Priority::LOW,
            ))
            .build()
            .unwrap();
        assert_eq!(s.item_count(), 1);
        assert_eq!(s.request_count(), 1);
        assert_eq!(s.requests_for(DataItemId::new(0)), &[RequestId::new(0)]);
        assert_eq!(s.gc_delay(), SimDuration::from_mins(6));
        assert_eq!(s.horizon(), SimTime::from_hours(2));
    }

    #[test]
    fn duplicate_item_names_rejected() {
        let err = Scenario::builder(net(2))
            .add_item(DataItem::new(
                "x",
                Bytes::ZERO,
                vec![DataSource::new(MachineId::new(0), SimTime::ZERO)],
            ))
            .add_item(DataItem::new(
                "x",
                Bytes::ZERO,
                vec![DataSource::new(MachineId::new(1), SimTime::ZERO)],
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateItemName { .. }));
    }

    #[test]
    fn unknown_source_machine_rejected() {
        let err = Scenario::builder(net(2))
            .add_item(DataItem::new(
                "x",
                Bytes::ZERO,
                vec![DataSource::new(MachineId::new(9), SimTime::ZERO)],
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownMachine { .. }));
    }

    #[test]
    fn unknown_request_item_rejected() {
        let err = Scenario::builder(net(2))
            .add_request(Request::new(
                DataItemId::new(5),
                MachineId::new(1),
                SimTime::from_mins(1),
                Priority::LOW,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownItem { .. }));
    }

    #[test]
    fn requested_item_without_sources_rejected() {
        let err = Scenario::builder(net(2))
            .add_item(DataItem::new("x", Bytes::ZERO, vec![]))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(1),
                SimTime::from_mins(1),
                Priority::LOW,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::RequestedItemWithoutSources { .. }));
    }

    #[test]
    fn source_as_destination_rejected() {
        let err = Scenario::builder(net(2))
            .add_item(item_at(0))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(0),
                SimTime::from_mins(1),
                Priority::LOW,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::SourceIsDestination { .. }));
    }

    #[test]
    fn duplicate_requests_rejected() {
        let req = Request::new(
            DataItemId::new(0),
            MachineId::new(1),
            SimTime::from_mins(1),
            Priority::LOW,
        );
        let err = Scenario::builder(net(2))
            .add_item(item_at(0))
            .add_request(req)
            .add_request(req)
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateRequest { .. }));
    }

    #[test]
    fn duplicate_sources_rejected() {
        let err = Scenario::builder(net(2))
            .add_item(DataItem::new(
                "x",
                Bytes::ZERO,
                vec![
                    DataSource::new(MachineId::new(0), SimTime::ZERO),
                    DataSource::new(MachineId::new(0), SimTime::from_mins(1)),
                ],
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateSource { .. }));
    }

    #[test]
    fn same_item_two_destinations_allowed_with_distinct_deadlines() {
        let s = Scenario::builder(net(3))
            .add_item(item_at(0))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(1),
                SimTime::from_mins(10),
                Priority::LOW,
            ))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(2),
                SimTime::from_mins(20),
                Priority::HIGH,
            ))
            .build()
            .unwrap();
        assert_eq!(s.requests_for(DataItemId::new(0)).len(), 2);
        assert_eq!(s.latest_deadline(DataItemId::new(0)), Some(SimTime::from_mins(20)));
        assert_eq!(
            s.gc_time(DataItemId::new(0)),
            Some(SimTime::from_mins(26)) // 20 min deadline + 6 min γ
        );
    }

    #[test]
    fn gc_time_caps_at_horizon() {
        let s = Scenario::builder(net(2))
            .add_item(item_at(0))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(1),
                SimTime::from_mins(118),
                Priority::LOW,
            ))
            .build()
            .unwrap();
        // 118 min + 6 min = 124 min > 120 min horizon.
        assert_eq!(s.gc_time(DataItemId::new(0)), Some(SimTime::from_hours(2)));
    }

    #[test]
    fn gc_time_none_for_unrequested_item() {
        let s = Scenario::builder(net(2)).add_item(item_at(0)).build().unwrap();
        assert_eq!(s.latest_deadline(DataItemId::new(0)), None);
        assert_eq!(s.gc_time(DataItemId::new(0)), None);
    }

    #[test]
    fn p2mp_request_expands_into_a_recorded_group() {
        let s = Scenario::builder(net(4))
            .add_item(item_at(0))
            .add_p2mp_request(&crate::request::P2mpRequest::new(
                DataItemId::new(0),
                vec![MachineId::new(1), MachineId::new(2), MachineId::new(3)],
                SimTime::from_mins(30),
                Priority::HIGH,
            ))
            .build()
            .unwrap();
        assert_eq!(s.request_count(), 3);
        assert_eq!(s.p2mp_groups().len(), 1);
        assert_eq!(
            s.p2mp_groups()[0],
            vec![RequestId::new(0), RequestId::new(1), RequestId::new(2)]
        );
        for (i, &rid) in s.p2mp_groups()[0].iter().enumerate() {
            let r = s.request(rid);
            assert_eq!(r.destination(), MachineId::new(i as u32 + 1));
            assert_eq!(r.deadline(), SimTime::from_mins(30));
            assert_eq!(r.priority(), Priority::HIGH);
        }
    }

    #[test]
    fn empty_p2mp_group_rejected() {
        let err = Scenario::builder(net(2))
            .add_item(item_at(0))
            .add_p2mp_request(&crate::request::P2mpRequest::new(
                DataItemId::new(0),
                vec![],
                SimTime::from_mins(30),
                Priority::LOW,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::EmptyP2mpGroup { group: 0 }));
    }

    #[test]
    fn p2mp_duplicate_destination_rejected_as_duplicate_request() {
        let err = Scenario::builder(net(3))
            .add_item(item_at(0))
            .add_p2mp_request(&crate::request::P2mpRequest::new(
                DataItemId::new(0),
                vec![MachineId::new(1), MachineId::new(1)],
                SimTime::from_mins(30),
                Priority::LOW,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::DuplicateRequest { .. }));
    }

    #[test]
    fn scenarios_without_p2mp_serialize_without_the_field() {
        let s = Scenario::builder(net(2))
            .add_item(item_at(0))
            .add_request(Request::new(
                DataItemId::new(0),
                MachineId::new(1),
                SimTime::from_mins(30),
                Priority::LOW,
            ))
            .build()
            .unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("p2mp_groups"), "plain scenarios must stay byte-compatible");
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert!(back.p2mp_groups().is_empty());
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn p2mp_groups_round_trip_through_serialization() {
        let s = Scenario::builder(net(3))
            .add_item(item_at(0))
            .add_p2mp_request(&crate::request::P2mpRequest::new(
                DataItemId::new(0),
                vec![MachineId::new(1), MachineId::new(2)],
                SimTime::from_mins(30),
                Priority::MEDIUM,
            ))
            .build()
            .unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("p2mp_groups"));
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.p2mp_groups(), s.p2mp_groups());
    }

    #[test]
    fn builder_overrides_apply() {
        let s = Scenario::builder(net(2))
            .gc_delay(SimDuration::from_mins(1))
            .horizon(SimTime::from_hours(4))
            .build()
            .unwrap();
        assert_eq!(s.gc_delay(), SimDuration::from_mins(1));
        assert_eq!(s.horizon(), SimTime::from_hours(4));
    }
}
