//! Simulation time.
//!
//! All scheduling arithmetic in this workspace uses integer milliseconds.
//! Integer time keeps every comparison exact and total (no NaN hazards in
//! priority queues) and makes scheduler runs bit-for-bit reproducible.
//! The paper reports urgency "in seconds"; conversion to fractional seconds
//! happens only inside cost evaluation ([`SimDuration::as_secs_f64`]).

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in milliseconds since the
/// start of the scheduling horizon (time 0 in the paper).
///
/// # Examples
///
/// ```
/// use dstage_model::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_mins(5) + SimDuration::from_secs(30);
/// assert_eq!(t, SimTime::from_millis(330_000));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulation time, in milliseconds.
///
/// # Examples
///
/// ```
/// use dstage_model::time::SimDuration;
///
/// let d = SimDuration::from_mins(1) + SimDuration::from_secs(5);
/// assert_eq!(d.as_millis(), 65_000);
/// assert!((d.as_secs_f64() - 65.0).abs() < 1e-12);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The scheduling start instant (time 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" / end-of-horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from milliseconds since time 0.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds since time 0.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Creates an instant from whole minutes since time 0.
    #[must_use]
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Creates an instant from whole hours since time 0.
    #[must_use]
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// Milliseconds since time 0.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds since time 0.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is after `self`
    /// (saturating), which is the convenient behaviour when computing
    /// slack against a missed deadline.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The exact duration from `earlier` to `self`.
    ///
    /// Returns `None` if `earlier > self`.
    #[must_use]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    ///
    /// Use this when the result may legitimately reach "never" (for
    /// example extending a hold interval to the end of the horizon).
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Adds a duration, returning `None` on overflow.
    ///
    /// Use this when the sum feeds an upper-bound comparison: saturating
    /// to [`SimTime::MAX`] there would make an unrepresentably late
    /// instant pass a `<= limit` test against an open-ended limit.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Creates a duration from whole hours.
    #[must_use]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Length in milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds (the paper's urgency unit).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` when the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Adds two durations, saturating at [`SimDuration::MAX`].
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics on overflow in debug builds (simulation horizons are hours,
    /// far below `u64::MAX` milliseconds).
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if `rhs` is longer than the time since 0 (debug builds).
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics if `rhs > self` (debug builds); use
    /// [`SimTime::saturating_since`] for slack-style arithmetic.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::MAX {
            return write!(f, "t=never");
        }
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let s = (self.0 / 1_000) % 60;
        let m = (self.0 / 60_000) % 60;
        let h = self.0 / 3_600_000;
        if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}.{ms:03}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}.{ms:03}s")
        } else {
            write!(f, "{s}.{ms:03}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_mins(3), SimTime::from_secs(180));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_mins(3), SimDuration::from_secs(180));
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn checked_since_detects_ordering() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(4)));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        let t = SimTime::from_secs(1).saturating_add(SimDuration::from_secs(2));
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_millis(1)), None);
        assert_eq!(
            SimTime::from_millis(u64::MAX - 5).checked_add(SimDuration::from_millis(5)),
            Some(SimTime::MAX)
        );
        assert_eq!(
            SimTime::from_secs(1).checked_add(SimDuration::from_secs(2)),
            Some(SimTime::from_secs(3))
        );
    }

    #[test]
    fn min_max_pick_correct_instant() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(a), b);
        assert_eq!(b.min(a), a);
    }

    #[test]
    fn seconds_conversion_is_exact_for_millis() {
        let d = SimDuration::from_millis(1_500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        let t = SimTime::from_millis(2_250);
        assert!((t.as_secs_f64() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn display_formats_are_humane() {
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30.000s");
        assert_eq!(
            SimDuration::from_millis(3 * 3_600_000 + 4 * 60_000 + 5_250).to_string(),
            "3h04m05.250s"
        );
        assert_eq!(SimTime::from_secs(90).to_string(), "t=1m30.000s");
        assert_eq!(SimTime::MAX.to_string(), "t=never");
    }

    #[test]
    fn ordering_is_total_and_matches_millis() {
        let mut v =
            vec![SimTime::from_secs(3), SimTime::ZERO, SimTime::from_millis(1), SimTime::MAX];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_millis(1), SimTime::from_secs(3), SimTime::MAX]
        );
    }
}
