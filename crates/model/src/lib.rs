//! Model types for the *data staging* problem of Theys, Tan, Beck, Siegel,
//! and Jurczyk, "Scheduling Heuristics for Data Requests in an
//! Oversubscribed Network with Priorities and Deadlines" (ICDCS 2000),
//! Section 3.
//!
//! The model describes a communication system of machines with finite
//! storage, connected by unidirectional *virtual links* (time-windowed,
//! bandwidth-limited), over which named *data items* must be staged from
//! their initial source machines to requesting destination machines before
//! per-request deadlines, each request carrying a priority weight.
//!
//! # Examples
//!
//! Build a two-machine scenario with one request:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use dstage_model::prelude::*;
//!
//! let mut b = NetworkBuilder::new();
//! let hq = b.add_machine(Machine::new("hq", Bytes::from_gib(1)));
//! let field = b.add_machine(Machine::new("field", Bytes::from_mib(64)));
//! b.add_link(VirtualLink::new(hq, field, SimTime::ZERO,
//!     SimTime::from_hours(1), BitsPerSec::from_kbps(512)));
//! b.add_link(VirtualLink::new(field, hq, SimTime::ZERO,
//!     SimTime::from_hours(1), BitsPerSec::from_kbps(512)));
//!
//! let scenario = Scenario::builder(b.build())
//!     .add_item(DataItem::new("terrain-map", Bytes::from_mib(5),
//!         vec![DataSource::new(hq, SimTime::ZERO)]))
//!     .add_request(Request::new(DataItemId::new(0), field,
//!         SimTime::from_mins(45), Priority::HIGH))
//!     .build()?;
//! assert!(scenario.network().is_strongly_connected());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod error;
pub mod ids;
pub mod link;
pub mod machine;
pub mod network;
pub mod request;
pub mod scenario;
pub mod time;
pub mod units;

/// Convenience re-exports of the model vocabulary.
pub mod prelude {
    pub use crate::data::{DataItem, DataSource};
    pub use crate::error::ScenarioError;
    pub use crate::ids::{DataItemId, MachineId, RequestId, VirtualLinkId};
    pub use crate::link::VirtualLink;
    pub use crate::machine::Machine;
    pub use crate::network::{Network, NetworkBuilder};
    pub use crate::request::{Priority, PriorityWeights, Request};
    pub use crate::scenario::{Scenario, ScenarioBuilder};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::units::{BitsPerSec, Bytes};
}
