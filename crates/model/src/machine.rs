//! Machines (network nodes).
//!
//! Every machine in the model can simultaneously be a *server* holding
//! initial copies of data items, an *intermediate* staging node, and a
//! *client* destination — the roles are determined by the data-location and
//! request tables, not by the machine itself (paper §3).

use serde::{Deserialize, Serialize};

use crate::ids::MachineId;
use crate::units::Bytes;

/// A machine `M[i]`: a node with finite storage capacity.
///
/// # Examples
///
/// ```
/// use dstage_model::machine::Machine;
/// use dstage_model::units::Bytes;
///
/// let m = Machine::new("forward-base", Bytes::from_gib(2));
/// assert_eq!(m.name(), "forward-base");
/// assert_eq!(m.capacity(), Bytes::from_gib(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Machine {
    name: String,
    capacity: Bytes,
}

impl Machine {
    /// Creates a machine with a human-readable name and a storage capacity
    /// (the paper's `Cap[i]`; the ledger tracks its time-varying remainder).
    #[must_use]
    pub fn new(name: impl Into<String>, capacity: Bytes) -> Self {
        Machine { name: name.into(), capacity }
    }

    /// The machine's human-readable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The total storage capacity.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }
}

/// A machine together with its id, as yielded by
/// [`crate::network::Network::machines`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineRef<'a> {
    /// The machine's id within its network.
    pub id: MachineId,
    /// The machine's static description.
    pub machine: &'a Machine,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_exposes_name_and_capacity() {
        let m = Machine::new("hq", Bytes::from_mib(10));
        assert_eq!(m.name(), "hq");
        assert_eq!(m.capacity(), Bytes::from_mib(10));
    }

    #[test]
    fn machine_accepts_owned_and_borrowed_names() {
        let a = Machine::new(String::from("x"), Bytes::ZERO);
        let b = Machine::new("x", Bytes::ZERO);
        assert_eq!(a, b);
    }
}
