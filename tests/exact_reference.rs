//! Near-optimality spot checks: on tiny random instances the heuristics
//! are compared against the exhaustive order-search reference — the
//! comparison the paper could not run at realistic sizes (§5.1).

use data_staging::core::cost::EuWeights;
use data_staging::core::exact::best_order_schedule;
use data_staging::prelude::*;
use data_staging::workload::{generate, GeneratorConfig};

/// A configuration small enough for the factorial reference: 4 machines,
/// 2 requests per machine = 8 requests.
fn tiny_config() -> GeneratorConfig {
    GeneratorConfig {
        machines: 4..=4,
        out_degree: 2..=3,
        request_factor: 2..=2,
        item_size: 10_000..=2_000_000,
        ..GeneratorConfig::default()
    }
}

#[test]
fn heuristics_never_beat_the_exact_reference_on_random_instances() {
    let weights = PriorityWeights::paper_1_10_100();
    for seed in 0..12u64 {
        let scenario = generate(&tiny_config(), seed);
        let exact = best_order_schedule(&scenario, &weights);
        exact.schedule.validate(&scenario).unwrap();
        for h in Heuristic::ALL {
            for &criterion in h.criteria() {
                let config = HeuristicConfig {
                    criterion,
                    eu: EuWeights::from_log10_ratio(2.0),
                    priority_weights: weights.clone(),
                    caching: true,
                };
                let out = run(&scenario, h, &config);
                let sum = out.schedule.evaluate(&scenario, &weights).weighted_sum;
                assert!(
                    sum <= exact.weighted_sum,
                    "seed {seed}: {h}/{criterion} ({sum}) beat exact ({})",
                    exact.weighted_sum
                );
            }
        }
    }
}

#[test]
fn paper_pairing_is_near_optimal_on_tiny_instances() {
    let weights = PriorityWeights::paper_1_10_100();
    let mut heuristic_total = 0u64;
    let mut exact_total = 0u64;
    let mut optimal_hits = 0usize;
    const SEEDS: u64 = 12;
    for seed in 0..SEEDS {
        let scenario = generate(&tiny_config(), seed);
        let exact = best_order_schedule(&scenario, &weights);
        let out = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
        let sum = out.schedule.evaluate(&scenario, &weights).weighted_sum;
        heuristic_total += sum;
        exact_total += exact.weighted_sum;
        if sum == exact.weighted_sum {
            optimal_hits += 1;
        }
    }
    let ratio = heuristic_total as f64 / exact_total.max(1) as f64;
    eprintln!(
        "full_one/C4 vs exact over {SEEDS} tiny instances: \
         {heuristic_total}/{exact_total} = {ratio:.3}, optimal on {optimal_hits}"
    );
    assert!(
        ratio >= 0.85,
        "the paper pairing should be near-optimal on tiny instances (got {ratio:.3})"
    );
    assert!(
        optimal_hits * 2 >= SEEDS as usize,
        "expected the optimum to be reached on at least half the instances"
    );
}

#[test]
fn exact_is_sandwiched_by_the_bounds() {
    use data_staging::core::bounds::{possible_satisfy, upper_bound};
    let weights = PriorityWeights::paper_1_10_100();
    for seed in 0..12u64 {
        let scenario = generate(&tiny_config(), seed);
        let exact = best_order_schedule(&scenario, &weights);
        let ub = upper_bound(&scenario, &weights);
        let ps = possible_satisfy(&scenario, &weights).weighted_sum;
        assert!(exact.weighted_sum <= ps, "seed {seed}");
        assert!(ps <= ub, "seed {seed}");
    }
}
