//! End-to-end behaviour of garbage collection and storage pressure
//! (paper §4.4): intermediate copies occupy storage only until γ after the
//! item's latest deadline, after which the space is reusable.

use data_staging::prelude::*;

fn m(i: u32) -> MachineId {
    MachineId::new(i)
}

fn item(i: u32) -> DataItemId {
    DataItemId::new(i)
}

/// Network: src -> relay -> dst, with a relay whose storage fits exactly
/// one item at a time. Item 0's request has an early deadline, item 1's a
/// late one, so item 1 can be staged through the relay only after item 0's
/// copy is garbage-collected.
fn tight_relay_scenario(gamma_mins: u64) -> Scenario {
    let mut b = NetworkBuilder::new();
    let src = b.add_machine(Machine::new("src", Bytes::from_mib(64)));
    let relay = b.add_machine(Machine::new("relay", Bytes::new(10_000))); // one item only
    let dst = b.add_machine(Machine::new("dst", Bytes::from_mib(64)));
    let horizon = SimTime::from_hours(2);
    b.add_link(VirtualLink::new(src, relay, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
    b.add_link(VirtualLink::new(relay, dst, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
    Scenario::builder(b.build())
        .gc_delay(SimDuration::from_mins(gamma_mins))
        .add_item(DataItem::new(
            "first",
            Bytes::new(10_000),
            vec![DataSource::new(src, SimTime::ZERO)],
        ))
        .add_item(DataItem::new(
            "second",
            Bytes::new(10_000),
            vec![DataSource::new(src, SimTime::ZERO)],
        ))
        .add_request(Request::new(item(0), dst, SimTime::from_mins(5), Priority::HIGH))
        .add_request(Request::new(item(1), dst, SimTime::from_mins(60), Priority::HIGH))
        .build()
        .unwrap()
}

#[test]
fn second_item_waits_for_garbage_collection() {
    let scenario = tight_relay_scenario(6);
    let out = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
    out.schedule.validate(&scenario).unwrap();
    // Both requests satisfiable: the relay frees item 0's slot at
    // 5 min (deadline) + 6 min (γ) = 11 min, leaving ample time before
    // item 1's 60-minute deadline.
    assert_eq!(out.schedule.deliveries().len(), 2, "both requests must be satisfied");
    // The second item's transfer through the relay must start only after
    // the GC time of the first item.
    let gc_first = scenario.gc_time(item(0)).unwrap();
    let second_hop_into_relay = out
        .schedule
        .transfers()
        .iter()
        .find(|t| t.item == item(1) && t.to == m(1))
        .expect("item 1 must be staged through the relay");
    assert!(
        second_hop_into_relay.start >= gc_first,
        "item 1 entered the relay at {} before item 0's GC at {}",
        second_hop_into_relay.start,
        gc_first
    );
}

#[test]
fn longer_gamma_delays_reuse() {
    // With γ = 50 minutes the relay frees at 55 min; item 1 (deadline 60)
    // still fits (hops take ~10 s each). With γ pushing past the deadline
    // minus transfer time, it must fail.
    let ok = run(
        &tight_relay_scenario(50),
        Heuristic::FullPathOneDestination,
        &HeuristicConfig::paper_best(),
    );
    assert_eq!(ok.schedule.deliveries().len(), 2);

    let too_long = run(
        &tight_relay_scenario(56),
        Heuristic::FullPathOneDestination,
        &HeuristicConfig::paper_best(),
    );
    // Relay frees at 5 + 56 = 61 min > deadline 60: item 1 unsatisfiable.
    assert_eq!(too_long.schedule.deliveries().len(), 1);
}

#[test]
fn destinations_hold_to_horizon_and_block_reuse() {
    // If dst is also storage-tight and must hold item 0 until the horizon
    // (destinations are never garbage-collected), item 1 cannot land.
    let mut b = NetworkBuilder::new();
    let src = b.add_machine(Machine::new("src", Bytes::from_mib(64)));
    let dst = b.add_machine(Machine::new("dst", Bytes::new(10_000)));
    let horizon = SimTime::from_hours(2);
    b.add_link(VirtualLink::new(src, dst, SimTime::ZERO, horizon, BitsPerSec::new(8_000)));
    let scenario = Scenario::builder(b.build())
        .add_item(DataItem::new("a", Bytes::new(10_000), vec![DataSource::new(src, SimTime::ZERO)]))
        .add_item(DataItem::new("b", Bytes::new(10_000), vec![DataSource::new(src, SimTime::ZERO)]))
        .add_request(Request::new(item(0), dst, SimTime::from_mins(5), Priority::HIGH))
        .add_request(Request::new(item(1), dst, SimTime::from_mins(60), Priority::LOW))
        .build()
        .unwrap();
    let out = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
    out.schedule.validate(&scenario).unwrap();
    assert_eq!(
        out.schedule.deliveries().len(),
        1,
        "destination storage held to the horizon must block the second item"
    );
}

#[test]
fn gc_time_is_capped_at_horizon() {
    let scenario = tight_relay_scenario(6);
    for id in scenario.item_ids() {
        if let Some(gc) = scenario.gc_time(id) {
            assert!(gc <= scenario.horizon());
        }
    }
}
