//! End-to-end pipeline tests: generate → schedule → validate → evaluate,
//! for every scheduler in the workspace.

use data_staging::core::baselines::{priority_first, random_dijkstra, single_dijkstra_random};
use data_staging::core::bounds::{possible_satisfy, upper_bound};
use data_staging::core::cost::{CostCriterion, EuWeights};
use data_staging::prelude::*;
use data_staging::workload::{generate, GeneratorConfig};

fn config(criterion: CostCriterion, x: f64) -> HeuristicConfig {
    HeuristicConfig {
        criterion,
        eu: EuWeights::from_log10_ratio(x),
        priority_weights: PriorityWeights::paper_1_10_100(),
        caching: true,
    }
}

#[test]
fn every_scheduler_produces_valid_schedules() {
    let weights = PriorityWeights::paper_1_10_100();
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let mut outcomes = Vec::new();
        for h in Heuristic::ALL {
            for &c in h.criteria() {
                outcomes.push((format!("{h}/{c}"), run(&scenario, h, &config(c, 1.0))));
            }
        }
        outcomes.push(("single_dij".into(), single_dijkstra_random(&scenario, seed)));
        outcomes.push(("random_dij".into(), random_dijkstra(&scenario, seed)));
        outcomes.push(("priority_first".into(), priority_first(&scenario, &weights)));
        for (name, outcome) in outcomes {
            let derived = outcome
                .schedule
                .validate(&scenario)
                .unwrap_or_else(|e| panic!("seed {seed} {name}: invalid schedule: {e}"));
            // The scheduler's claimed deliveries must match the replay
            // exactly (same requests).
            let mut claimed: Vec<_> =
                outcome.schedule.deliveries().iter().map(|d| d.request).collect();
            let mut replayed: Vec<_> = derived.iter().map(|d| d.request).collect();
            claimed.sort();
            replayed.sort();
            assert_eq!(claimed, replayed, "seed {seed} {name}: delivery set mismatch");
        }
    }
}

#[test]
fn bounds_sandwich_every_scheduler() {
    let weights = PriorityWeights::paper_1_10_100();
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let ub = upper_bound(&scenario, &weights);
        let ps = possible_satisfy(&scenario, &weights).weighted_sum;
        assert!(ps <= ub, "seed {seed}");
        for h in Heuristic::ALL {
            let out = run(&scenario, h, &config(CostCriterion::C4, 2.0));
            let eval = out.schedule.evaluate(&scenario, &weights);
            assert!(
                eval.weighted_sum <= ps,
                "seed {seed} {h}: {} > possible_satisfy {}",
                eval.weighted_sum,
                ps
            );
        }
    }
}

#[test]
fn heuristics_dominate_the_loose_lower_bound_on_average() {
    let weights = PriorityWeights::paper_1_10_100();
    let mut heuristic_total = 0u64;
    let mut single_total = 0u64;
    for seed in 0..4u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let h = run(&scenario, Heuristic::FullPathOneDestination, &config(CostCriterion::C4, 2.0));
        heuristic_total += h.schedule.evaluate(&scenario, &weights).weighted_sum;
        let s = single_dijkstra_random(&scenario, seed);
        single_total += s.schedule.evaluate(&scenario, &weights).weighted_sum;
    }
    assert!(
        heuristic_total > single_total,
        "heuristic mean {heuristic_total} must beat single-Dijkstra {single_total}"
    );
}

#[test]
fn deliveries_meet_their_deadlines() {
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let out = run(&scenario, Heuristic::PartialPath, &config(CostCriterion::C2, 0.0));
        for d in out.schedule.deliveries() {
            let req = scenario.request(d.request);
            assert!(d.at <= req.deadline(), "seed {seed}: delivery after deadline");
        }
    }
}

#[test]
fn transfers_respect_link_windows_and_endpoints() {
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let out =
            run(&scenario, Heuristic::FullPathAllDestinations, &config(CostCriterion::C4, 1.0));
        for t in out.schedule.transfers() {
            let link = scenario.network().link(t.link);
            assert_eq!(link.source(), t.from);
            assert_eq!(link.destination(), t.to);
            assert!(t.start >= link.start(), "seed {seed}: transfer before window");
            assert!(t.arrival <= link.end(), "seed {seed}: transfer past window");
            assert_eq!(t.arrival, t.start + link.transfer_time(scenario.item(t.item).size()));
        }
    }
}
