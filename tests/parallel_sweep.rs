//! Determinism tests for the parallel sweep executor: a sweep fanned out
//! over N worker threads must render reports **byte-identical** to the
//! sequential run, and the harness result cache must stay coherent when
//! hammered from many threads at once.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use data_staging::sim::experiments::{self, ExperimentReport};
use data_staging::sim::runner::{Harness, SchedulerKind, Weighting};
use data_staging::sim::sweep::EuRatioPoint;
use data_staging::workload::GeneratorConfig;

use data_staging::core::cost::CostCriterion;
use data_staging::core::heuristic::Heuristic;

/// Every rendered byte of a report set: text blocks plus CSV payloads.
///
/// The one deliberately environment-dependent output — the measured
/// wall-clock column of the `exec` companion table — is masked first:
/// it differs even between two sequential runs, so it is excluded from
/// the byte-identity guarantee (which covers every scheduling outcome).
fn render(reports: &[ExperimentReport]) -> String {
    let mut out = String::new();
    for report in reports {
        let mut report = report.clone();
        for table in &mut report.tables {
            if let Some(col) = table.columns.iter().position(|c| c == "mean time [ms]") {
                for row in &mut table.rows {
                    row[col] = "<wall-clock>".into();
                }
            }
        }
        out.push_str(&report.to_text());
        for (name, csv) in report.csv_files() {
            out.push_str(&name);
            out.push('\n');
            out.push_str(&csv);
        }
    }
    out
}

fn assert_byte_identical(parallel: &str, sequential: &str, threads: usize) {
    if parallel != sequential {
        let at = parallel
            .bytes()
            .zip(sequential.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| parallel.len().min(sequential.len()));
        panic!(
            "{threads}-thread sweep diverges from sequential at byte {at} \
             (parallel {} bytes, sequential {} bytes):\n  parallel:   {:?}\n  sequential: {:?}",
            parallel.len(),
            sequential.len(),
            &parallel[at.saturating_sub(40)..(at + 40).min(parallel.len())],
            &sequential[at.saturating_sub(40)..(at + 40).min(sequential.len())],
        );
    }
}

/// Debug-speed smoke suite: 2, 4, and 8 worker threads must all
/// reproduce the sequential report byte for byte. (The paper-scale
/// 40-case version of this loop is the `#[ignore]`d release test
/// below.)
#[test]
fn parallel_sweep_is_byte_identical_across_thread_counts() {
    let sequential = render(&experiments::all(&Harness::new(&GeneratorConfig::small(), 6)));
    assert!(!sequential.is_empty());
    for threads in [2usize, 4, 8] {
        let harness = Harness::new(&GeneratorConfig::small(), 6);
        let parallel = render(&experiments::all_parallel(&harness, threads));
        assert_byte_identical(&parallel, &sequential, threads);
    }
}

/// The full paper-scale 40-case suite (the slow one — run explicitly or
/// in CI release mode). Thread count comes from `DSTAGE_THREADS` (CI
/// pins 2); when `DSTAGE_SWEEP_BUDGET_SECS` is set, the parallel sweep
/// must also finish within that wall-clock budget.
#[test]
#[ignore = "paper-scale suite; run with: cargo test --release --test parallel_sweep -- --ignored"]
fn full_sweep_parallel_matches_sequential_on_the_paper_suite() {
    let started = Instant::now();
    let sequential = render(&experiments::all(&Harness::paper()));
    let sequential_elapsed = started.elapsed();

    // The resolved count (CI pins DSTAGE_THREADS=2) plus the canonical
    // 2/4/8 ladder, deduped.
    let mut thread_counts = vec![data_staging::sim::resolve_threads(None)];
    for t in [2usize, 4, 8] {
        if !thread_counts.contains(&t) {
            thread_counts.push(t);
        }
    }
    for threads in thread_counts {
        let harness = Harness::paper();
        let started = Instant::now();
        let parallel = render(&experiments::all_parallel(&harness, threads));
        let parallel_elapsed = started.elapsed();

        eprintln!(
            "[full-sweep] sequential {sequential_elapsed:.1?}, \
             {threads} threads {parallel_elapsed:.1?} \
             ({:.2}x)",
            sequential_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9),
        );
        assert_byte_identical(&parallel, &sequential, threads);

        if let Ok(budget) = std::env::var("DSTAGE_SWEEP_BUDGET_SECS") {
            let budget: u64 = budget.parse().expect("DSTAGE_SWEEP_BUDGET_SECS must be seconds");
            assert!(
                parallel_elapsed <= Duration::from_secs(budget),
                "parallel sweep took {parallel_elapsed:.1?}, over the {budget}s budget"
            );
        }
    }
}

/// The extended scheduler matrix — `alap` and `rcd` included — must
/// render byte-identically whether its sweep is prefetched on two
/// worker threads or computed sequentially, just like the paper suite.
#[test]
fn extended_scheduler_sweep_is_byte_identical_at_two_threads() {
    let sequential =
        render(&[experiments::schedulers(&Harness::new(&GeneratorConfig::small(), 4))]);
    let harness = Harness::new(&GeneratorConfig::small(), 4);
    let (units, bounds) = experiments::work_units("schedulers").expect("known experiment id");
    harness.prefetch(&units, &bounds, 2);
    let parallel = render(&[experiments::schedulers(&harness)]);
    assert_byte_identical(&parallel, &sequential, 2);
}

/// Prefetching on worker threads must leave the cache holding exactly
/// what sequential calls would have computed.
#[test]
fn prefetched_results_equal_sequential_results() {
    let kinds = [
        (
            SchedulerKind::Pairing(
                Heuristic::PartialPath,
                CostCriterion::C4,
                EuRatioPoint::Log10(2),
            ),
            Weighting::W1_10_100,
        ),
        (
            SchedulerKind::Pairing(Heuristic::PartialPath, CostCriterion::C3, EuRatioPoint::NegInf),
            Weighting::W1_10_100,
        ),
        (SchedulerKind::RandomDijkstra, Weighting::W1_10_100),
        (SchedulerKind::PriorityFirst, Weighting::W1_5_10),
    ];
    let parallel = Harness::new(&GeneratorConfig::small(), 6);
    parallel.prefetch(&kinds, &[Weighting::W1_10_100], 4);
    let sequential = Harness::new(&GeneratorConfig::small(), 6);
    for &(kind, weighting) in &kinds {
        let p = parallel.results(kind, weighting);
        let s = sequential.results(kind, weighting);
        assert_eq!(p.len(), s.len());
        for (a, b) in p.iter().zip(s.iter()) {
            assert_eq!(a.evaluation, b.evaluation, "{kind:?} under {weighting:?}");
        }
    }
    let pb = parallel.bounds(Weighting::W1_10_100);
    let sb = sequential.bounds(Weighting::W1_10_100);
    for (a, b) in pb.iter().zip(sb.iter()) {
        assert_eq!(a.upper_bound, b.upper_bound);
        assert_eq!(a.possible_satisfy, b.possible_satisfy);
    }
}

/// Interleaving smoke test for the result cache: many threads released
/// at once against overlapping work units must all observe coherent,
/// identical series (no torn inserts, no duplicated divergent runs).
#[test]
fn result_cache_stays_coherent_under_concurrent_hammering() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 4;
    let kinds = [
        SchedulerKind::PriorityFirst,
        SchedulerKind::RandomDijkstra,
        SchedulerKind::Pairing(Heuristic::PartialPath, CostCriterion::C4, EuRatioPoint::Log10(0)),
    ];
    for round in 0..ROUNDS {
        let harness = Arc::new(Harness::new(&GeneratorConfig::small(), 2));
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|worker| {
                let harness = Arc::clone(&harness);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    // Stagger who asks for what first to vary interleavings.
                    let mut seen = Vec::new();
                    for step in 0..kinds.len() {
                        let kind = kinds[(worker + step) % kinds.len()];
                        seen.push((kind, harness.results(kind, Weighting::W1_10_100)));
                    }
                    seen
                })
            })
            .collect();
        let reference = Harness::new(&GeneratorConfig::small(), 2);
        for handle in handles {
            for (kind, series) in handle.join().expect("worker panicked") {
                let expected = reference.results(kind, Weighting::W1_10_100);
                assert_eq!(series.len(), expected.len());
                for (a, b) in series.iter().zip(expected.iter()) {
                    assert_eq!(a.evaluation, b.evaluation, "round {round}, {kind:?}");
                }
                // Later calls must be served by the same cached allocation.
                assert!(Arc::ptr_eq(&series, &harness.results(kind, Weighting::W1_10_100)));
            }
        }
    }
}
