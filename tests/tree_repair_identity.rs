//! Repair-gate byte-identity: incremental tree repair is a pure
//! optimization, so whole sweep runs with `DSTAGE_TREE_REPAIR` on and
//! off must render the very same bytes — schedules, metrics tables, and
//! CSV companions alike. One `#[test]`, because the gate override is
//! process-global (same reasoning as `obs_readonly_tap`).

use data_staging::sim::experiments::{self, ExperimentReport};
use data_staging::sim::runner::Harness;
use data_staging::workload::GeneratorConfig;

/// Every rendered byte of a report set, with the measured wall-clock
/// column masked (it varies run to run by nature; see `obs_readonly_tap`).
fn render(reports: &[ExperimentReport]) -> String {
    let mut out = String::new();
    for report in reports {
        let mut report = report.clone();
        for table in &mut report.tables {
            if let Some(col) = table.columns.iter().position(|c| c == "mean time [ms]") {
                for row in &mut table.rows {
                    row[col] = "<wall-clock>".into();
                }
            }
        }
        out.push_str(&report.to_text());
        for (name, csv) in report.csv_files() {
            out.push_str(&name);
            out.push('\n');
            out.push_str(&csv);
        }
    }
    out
}

#[test]
fn sweep_reports_are_byte_identical_with_repair_on_and_off() {
    data_staging::path::repair::set_enabled(true);
    let repaired = render(&experiments::all(&Harness::new(&GeneratorConfig::small(), 4)));
    assert!(!repaired.is_empty());

    data_staging::path::repair::set_enabled(false);
    let rebuilt = render(&experiments::all(&Harness::new(&GeneratorConfig::small(), 4)));
    assert_eq!(
        repaired, rebuilt,
        "sweep diverges when incremental tree repair is disabled — repair is inexact somewhere"
    );

    // Parallel runs repair too; the ladder must match the reference.
    for threads in [2usize, 4] {
        data_staging::path::repair::set_enabled(true);
        let harness = Harness::new(&GeneratorConfig::small(), 4);
        let parallel_repaired = render(&experiments::all_parallel(&harness, threads));
        assert_eq!(
            repaired, parallel_repaired,
            "{threads}-thread sweep with repair on diverges from the sequential reference"
        );
    }

    data_staging::path::repair::set_enabled(true);
}
