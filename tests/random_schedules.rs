//! Property-based integration tests: randomized small scenarios through
//! the whole pipeline, with the independent replay validator as the
//! oracle.

use data_staging::core::baselines::{priority_first, random_dijkstra, single_dijkstra_random};
use data_staging::core::cost::{CostCriterion, EuWeights};
use data_staging::prelude::*;
use data_staging::workload::{generate, GeneratorConfig};
use proptest::prelude::*;

fn config_for(criterion: CostCriterion, x: i32) -> HeuristicConfig {
    HeuristicConfig {
        criterion,
        eu: EuWeights::from_log10_ratio(f64::from(x)),
        priority_weights: PriorityWeights::paper_1_10_100(),
        caching: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn heuristics_always_produce_valid_schedules(
        seed in 0u64..10_000,
        criterion_idx in 0usize..4,
        x in -3i32..=5,
        heuristic_idx in 0usize..3,
    ) {
        let heuristic = Heuristic::ALL[heuristic_idx];
        let criteria = heuristic.criteria();
        let criterion = criteria[criterion_idx % criteria.len()];
        let scenario = generate(&GeneratorConfig::small(), seed);
        let out = run(&scenario, heuristic, &config_for(criterion, x));
        let derived = out.schedule.validate(&scenario).expect("schedule must replay");
        prop_assert_eq!(derived.len(), out.schedule.deliveries().len());
        // Weighted sum never exceeds the loose upper bound.
        let weights = PriorityWeights::paper_1_10_100();
        let eval = out.schedule.evaluate(&scenario, &weights);
        let ub = data_staging::core::bounds::upper_bound(&scenario, &weights);
        prop_assert!(eval.weighted_sum <= ub);
    }

    #[test]
    fn baselines_always_produce_valid_schedules(seed in 0u64..10_000) {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let weights = PriorityWeights::paper_1_5_10();
        for outcome in [
            single_dijkstra_random(&scenario, seed),
            random_dijkstra(&scenario, seed),
            priority_first(&scenario, &weights),
        ] {
            outcome.schedule.validate(&scenario).expect("baseline schedule must replay");
        }
    }

    #[test]
    fn satisfied_set_is_monotone_under_priority_weights(seed in 0u64..10_000) {
        // Evaluating the same schedule under both weightings: the
        // *satisfied request sets* are identical (evaluation does not
        // reschedule), only sums differ.
        let scenario = generate(&GeneratorConfig::small(), seed);
        let out = run(&scenario, Heuristic::PartialPath, &config_for(CostCriterion::C4, 0));
        let a = out.schedule.evaluate(&scenario, &PriorityWeights::paper_1_5_10());
        let b = out.schedule.evaluate(&scenario, &PriorityWeights::paper_1_10_100());
        prop_assert_eq!(a.satisfied_count, b.satisfied_count);
        prop_assert_eq!(a.satisfied_by_priority, b.satisfied_by_priority);
        prop_assert!(a.weighted_sum <= b.weighted_sum);
    }
}
