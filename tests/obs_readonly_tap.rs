//! Read-only-tap byte-identity tests: the observability layer must never
//! influence a scheduling outcome. A sweep run with the tap recording is
//! rendered and compared byte for byte against sweeps run with the tap
//! disabled, across the 2/4/8-thread ladder — any divergence means some
//! code path read observability state back into a decision.
//!
//! Everything lives in ONE `#[test]` because [`data_staging::obs::set_enabled`]
//! is process-global: flipping it from concurrently running tests would
//! race whole measurement runs against each other.

use data_staging::sim::experiments::{self, ExperimentReport};
use data_staging::sim::runner::Harness;
use data_staging::workload::GeneratorConfig;

/// Every rendered byte of a report set, with the one deliberately
/// environment-dependent output (the measured wall-clock column of the
/// `exec` companion table) masked — it differs even between two runs
/// with identical settings, so it is outside the byte-identity claim.
fn render(reports: &[ExperimentReport]) -> String {
    let mut out = String::new();
    for report in reports {
        let mut report = report.clone();
        for table in &mut report.tables {
            if let Some(col) = table.columns.iter().position(|c| c == "mean time [ms]") {
                for row in &mut table.rows {
                    row[col] = "<wall-clock>".into();
                }
            }
        }
        out.push_str(&report.to_text());
        for (name, csv) in report.csv_files() {
            out.push_str(&name);
            out.push('\n');
            out.push_str(&csv);
        }
    }
    out
}

#[test]
fn sweep_reports_are_byte_identical_with_obs_on_and_off() {
    // Reference run: tap ON, sequential. Also proves the tap is live by
    // checking that instrumented hot paths actually moved the counters
    // (guarded on the `tap` feature being compiled in, its default).
    data_staging::obs::set_enabled(true);
    data_staging::obs::reset();
    let with_obs = render(&experiments::all(&Harness::new(&GeneratorConfig::small(), 4)));
    assert!(!with_obs.is_empty());
    if data_staging::obs::enabled() {
        use data_staging::obs::metrics;
        assert!(
            metrics::RESOURCES_PROBES.get() > 0,
            "tap enabled but the resources layer recorded nothing"
        );
        assert!(metrics::PATH_TREES.get() > 0, "tap enabled but the path layer recorded nothing");
    }

    // Tap OFF: sequential and the 2/4/8-thread ladder must all render
    // the very same bytes.
    data_staging::obs::set_enabled(false);
    data_staging::obs::reset();
    let sequential_off = render(&experiments::all(&Harness::new(&GeneratorConfig::small(), 4)));
    assert_eq!(
        with_obs, sequential_off,
        "sequential sweep diverges when the observability tap is disabled"
    );
    for threads in [2usize, 4, 8] {
        let harness = Harness::new(&GeneratorConfig::small(), 4);
        let parallel_off = render(&experiments::all_parallel(&harness, threads));
        assert_eq!(
            with_obs, parallel_off,
            "{threads}-thread sweep with obs off diverges from the obs-on reference"
        );
    }

    // With the tap off, nothing may have been recorded.
    assert_eq!(
        data_staging::obs::metrics::RESOURCES_PROBES.get(),
        0,
        "tap disabled but counters still moved — a record call is not gated"
    );
    assert_eq!(data_staging::obs::recorder::total_recorded(), 0);

    data_staging::obs::set_enabled(true);
}
