//! Compile-time thread-safety audit: the types the admission daemon
//! shares across worker threads must be `Send + Sync`. These assertions
//! fail at compile time if anyone reintroduces `Rc`/`RefCell` (or a raw
//! pointer) into the shared data model.

use data_staging::core::schedule::Schedule;
use data_staging::core::state::SchedulerState;
use data_staging::model::scenario::Scenario;
use data_staging::resources::ledger::NetworkLedger;
use data_staging::service::engine::AdmissionEngine;
use data_staging::service::server::{LatencyHistogram, Server};
use data_staging::sim::runner::Harness;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_scheduling_state_is_send_and_sync() {
    // The data model the service holds behind its RwLock.
    assert_send_sync::<Scenario>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<NetworkLedger>();
    // The in-flight scheduler state (borrows the scenario, so it is
    // checked at a concrete lifetime).
    assert_send_sync::<SchedulerState<'static>>();
    // The service layer itself.
    assert_send_sync::<AdmissionEngine>();
    assert_send_sync::<Server>();
    assert_send_sync::<LatencyHistogram>();
    // The experiment harness (Arc + Mutex caches, not Rc + RefCell).
    assert_send_sync::<Harness>();
}
