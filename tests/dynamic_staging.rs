//! Integration tests for the online (dynamic) staging layer against
//! paper-style generated workloads.

use data_staging::dynamic::{simulate, Event, EventKind, EventLog, OnlinePolicy};
use data_staging::prelude::*;
use data_staging::workload::{generate, GeneratorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn policy() -> OnlinePolicy {
    OnlinePolicy::paper_best()
}

/// Random disturbance mix over a generated scenario.
fn random_events(scenario: &data_staging::model::scenario::Scenario, seed: u64) -> EventLog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    // Release a third of the requests over the first half hour.
    for (req_id, _) in scenario.requests() {
        if rng.gen_bool(1.0 / 3.0) {
            let at = SimTime::from_secs(rng.gen_range(1..1_800));
            events.push(Event::new(at, EventKind::Release(req_id)));
        }
    }
    // A couple of link outages.
    for _ in 0..2 {
        let link = VirtualLinkId::new(rng.gen_range(0..scenario.network().link_count()) as u32);
        events.push(Event::new(
            SimTime::from_secs(rng.gen_range(60..3_600)),
            EventKind::LinkOutage(link),
        ));
    }
    // A few copy losses at random machines.
    for _ in 0..3 {
        let item = DataItemId::new(rng.gen_range(0..scenario.item_count()) as u32);
        let machine = MachineId::new(rng.gen_range(0..scenario.network().machine_count()) as u32);
        events.push(Event::new(
            SimTime::from_secs(rng.gen_range(60..3_600)),
            EventKind::CopyLoss { item, machine },
        ));
    }
    EventLog::new(scenario, events).expect("generated ids are in range")
}

#[test]
fn online_outcomes_are_deterministic() {
    let scenario = generate(&GeneratorConfig::small(), 2);
    let events = random_events(&scenario, 7);
    let a = simulate(&scenario, &events, &policy());
    let b = simulate(&scenario, &events, &policy());
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.cancelled, b.cancelled);
    assert_eq!(a.replans, b.replans);
}

#[test]
fn executed_transfers_respect_the_model_modulo_outages() {
    // The executed schedule must replay cleanly against the *original*
    // network: outages only remove capacity, so surviving transfers are a
    // fortiori feasible. (Cancelled in-flight transfers are excluded by
    // construction.)
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let events = random_events(&scenario, seed + 100);
        let outcome = simulate(&scenario, &events, &policy());
        // validate() also re-derives deliveries; under copy losses our
        // survival semantics can only *shrink* that set.
        let derived = outcome
            .executed
            .validate(&scenario)
            .unwrap_or_else(|e| panic!("seed {seed}: executed schedule invalid: {e}"));
        for d in outcome.executed.deliveries() {
            assert!(
                derived.iter().any(|x| x.request == d.request),
                "seed {seed}: claimed delivery {d:?} not backed by replay"
            );
        }
    }
}

#[test]
fn disturbances_never_pay() {
    // An online run under disturbances never beats the undisturbed static
    // schedule of the same policy (events only remove options: outages
    // and losses destroy capacity/data; late releases defer knowledge).
    let w = PriorityWeights::paper_1_10_100();
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let offline =
            run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
        let offline_sum = offline.schedule.evaluate(&scenario, &w).weighted_sum;
        let events = random_events(&scenario, seed + 200);
        let online = simulate(&scenario, &events, &policy());
        let online_sum = online.executed.evaluate(&scenario, &w).weighted_sum;
        assert!(
            online_sum <= offline_sum,
            "seed {seed}: online {online_sum} beat offline {offline_sum} under disturbances"
        );
    }
}

#[test]
fn pure_release_events_with_zero_delay_match_static() {
    // Releasing every request at t=0 via explicit events is the static
    // problem.
    let scenario = generate(&GeneratorConfig::small(), 4);
    let events: Vec<Event> =
        scenario.request_ids().map(|r| Event::new(SimTime::ZERO, EventKind::Release(r))).collect();
    let log = EventLog::new(&scenario, events).unwrap();
    let online = simulate(&scenario, &log, &policy());
    let offline = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
    assert_eq!(online.executed.transfers(), offline.schedule.transfers());
}

#[test]
fn cancelled_and_executed_are_disjoint() {
    for seed in 0..3u64 {
        let scenario = generate(&GeneratorConfig::small(), seed);
        let events = random_events(&scenario, seed + 300);
        let outcome = simulate(&scenario, &events, &policy());
        for c in &outcome.cancelled {
            assert!(
                !outcome.executed.transfers().contains(c),
                "seed {seed}: transfer both cancelled and executed: {c:?}"
            );
        }
    }
}

#[test]
fn later_releases_cannot_help() {
    // Releasing a request later (all else equal) never increases the
    // weighted sum.
    let w = PriorityWeights::paper_1_10_100();
    let scenario = generate(&GeneratorConfig::small(), 6);
    let victim = RequestId::new(0);
    let mut last = u64::MAX;
    for minutes in [0u64, 10, 30, 60] {
        let log = EventLog::new(
            &scenario,
            vec![Event::new(SimTime::from_mins(minutes), EventKind::Release(victim))],
        )
        .unwrap();
        let outcome = simulate(&scenario, &log, &policy());
        let sum = outcome.executed.evaluate(&scenario, &w).weighted_sum;
        assert!(
            sum <= last,
            "releasing {victim} at {minutes} min improved the outcome ({sum} > {last})"
        );
        last = sum;
    }
}
