//! Reproducibility tests: everything in the workspace is a pure function
//! of (configuration, seed).

use data_staging::core::baselines::{priority_first, random_dijkstra, single_dijkstra_random};
use data_staging::core::cost::EuWeights;
use data_staging::prelude::*;
use data_staging::workload::{generate, GeneratorConfig};

#[test]
fn heuristic_runs_are_bitwise_repeatable() {
    let scenario = generate(&GeneratorConfig::small(), 3);
    for h in Heuristic::ALL {
        for &c in h.criteria() {
            let config = HeuristicConfig {
                criterion: c,
                eu: EuWeights::from_log10_ratio(1.0),
                priority_weights: PriorityWeights::paper_1_10_100(),
                caching: true,
            };
            let a = run(&scenario, h, &config);
            let b = run(&scenario, h, &config);
            assert_eq!(a.schedule, b.schedule, "{h}/{c} not deterministic");
        }
    }
}

#[test]
fn baselines_are_seed_deterministic() {
    let scenario = generate(&GeneratorConfig::small(), 3);
    let weights = PriorityWeights::paper_1_5_10();
    assert_eq!(
        single_dijkstra_random(&scenario, 9).schedule,
        single_dijkstra_random(&scenario, 9).schedule
    );
    assert_eq!(random_dijkstra(&scenario, 9).schedule, random_dijkstra(&scenario, 9).schedule);
    assert_eq!(
        priority_first(&scenario, &weights).schedule,
        priority_first(&scenario, &weights).schedule
    );
}

#[test]
fn different_baseline_seeds_usually_differ() {
    let scenario = generate(&GeneratorConfig::small(), 3);
    let a = random_dijkstra(&scenario, 1).schedule;
    let b = random_dijkstra(&scenario, 2).schedule;
    // Random step choice almost surely diverges on a contended scenario.
    assert_ne!(a, b, "different seeds should explore different schedules");
}

#[test]
fn generated_scenarios_are_stable_across_calls() {
    let a = generate(&GeneratorConfig::paper(), 11);
    let b = generate(&GeneratorConfig::paper(), 11);
    assert_eq!(a.request_count(), b.request_count());
    assert_eq!(a.network().link_count(), b.network().link_count());
    for (ra, rb) in a.requests().zip(b.requests()) {
        assert_eq!(ra.1, rb.1);
    }
    for ((_, ia), (_, ib)) in a.items().zip(b.items()) {
        assert_eq!(ia, ib);
    }
}

#[test]
fn caching_toggle_never_changes_results() {
    // The dirty-item cache is an exact optimization (DESIGN.md §3); its
    // ablation must be invisible in the output on every heuristic.
    let scenario = generate(&GeneratorConfig::small(), 5);
    for h in Heuristic::ALL {
        for &c in h.criteria() {
            let mut config = HeuristicConfig {
                criterion: c,
                eu: EuWeights::from_log10_ratio(0.0),
                priority_weights: PriorityWeights::paper_1_10_100(),
                caching: true,
            };
            let cached = run(&scenario, h, &config);
            config.caching = false;
            let uncached = run(&scenario, h, &config);
            assert_eq!(cached.schedule, uncached.schedule, "{h}/{c} differs with caching off");
            assert_eq!(uncached.metrics.cache_hits, 0);
        }
    }
}
