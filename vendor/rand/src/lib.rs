//! In-tree stand-in for `rand` 0.8 covering this workspace's surface:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, `Rng::gen_bool`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is splitmix64, not the real crate's ChaCha12 — streams
//! are deterministic per seed but differ from upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The splitmix64-backed standard generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl StdRng {
    /// The next raw 64-bit output (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Uniform sampling support for `gen_range` operand types.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`; `hi` is inclusive.
    fn sample_closed(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64) - (lo as u64);
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_closed(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_closed(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_closed(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// Shim of `rand::Rng` (implemented for [`StdRng`] only).
pub trait Rng {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Generator type aliases (shim of `rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence-related helpers (shim of `rand::seq`).
pub mod seq {
    use super::{Rng, StdRng};

    /// Shim of `rand::seq::SliceRandom` (Fisher–Yates shuffle).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.gen_range(0..3);
            assert!(y < 3);
            let z: usize = rng.gen_range(5..=5);
            assert_eq!(z, 5);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
