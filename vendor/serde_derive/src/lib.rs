//! Derive macros for the vendored `serde` facade.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` with the
//! subset of attributes this workspace uses:
//!
//! * `#[serde(transparent)]` on newtype structs,
//! * `#[serde(with = "module")]` on fields,
//! * `#[serde(skip_serializing_if = "path")]` on fields,
//!
//! over plain structs (named, tuple, unit) and enums (unit, newtype,
//! tuple, and struct variants, externally tagged like real serde). The
//! parser walks raw `proc_macro` token trees — no `syn`/`quote`, because
//! the build environment is fully offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct SerdeAttrs {
    transparent: bool,
    with: Option<String>,
    skip_serializing_if: Option<String>,
}

#[derive(Clone)]
struct Field {
    name: Option<String>,
    ty: String,
    attrs: SerdeAttrs,
}

#[derive(Clone)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

#[derive(Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Generic parameter list as written, e.g. `'a, T`. Empty if none.
    generics: String,
    attrs: SerdeAttrs,
    data: Data,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_serde_attr(group_tokens: Vec<TokenTree>, attrs: &mut SerdeAttrs) {
    // group_tokens are the tokens inside `#[serde( ... )]`'s inner parens.
    let mut iter = group_tokens.into_iter().peekable();
    while let Some(tok) = iter.next() {
        let TokenTree::Ident(name) = tok else { continue };
        let name = name.to_string();
        let mut value: Option<String> = None;
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            iter.next();
            if let Some(TokenTree::Literal(lit)) = iter.next() {
                let text = lit.to_string();
                value = Some(text.trim_matches('"').to_string());
            }
        }
        match name.as_str() {
            "transparent" => attrs.transparent = true,
            "with" => attrs.with = value,
            "skip_serializing_if" => attrs.skip_serializing_if = value,
            _ => {}
        }
        // Skip a trailing comma, if any.
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
    }
}

/// Consumes leading attributes (`#[...]`), folding `#[serde(...)]` into
/// `attrs`, and returns the remaining tokens untouched.
fn take_attrs(tokens: &mut std::iter::Peekable<std::vec::IntoIter<TokenTree>>) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(first)) = inner.first() {
                        if first.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                parse_serde_attr(args.stream().into_iter().collect(), &mut attrs);
                            }
                        }
                    }
                }
            }
            _ => return attrs,
        }
    }
}

fn skip_visibility(tokens: &mut std::iter::Peekable<std::vec::IntoIter<TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Collects the generic parameter list after the type name, returning the
/// raw text between `<` and the matching `>` (empty when absent).
fn take_generics(tokens: &mut std::iter::Peekable<std::vec::IntoIter<TokenTree>>) -> String {
    if !matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return String::new();
    }
    tokens.next();
    let mut depth = 1usize;
    let mut text = String::new();
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        push_token(&mut text, &tok);
    }
    text.trim().to_string()
}

/// Appends one token to flattened source text. Tokens are separated by
/// spaces except after a lifetime quote, which must stay glued to its
/// ident (`' a` is not a lifetime).
fn push_token(text: &mut String, tok: &TokenTree) {
    text.push_str(&tok.to_string());
    if !matches!(tok, TokenTree::Punct(p) if p.as_char() == '\'') {
        text.push(' ');
    }
}

/// Splits a generic parameter list into bare parameter names (bounds
/// stripped), e.g. `'a, T: Clone` -> `['a, T]`.
fn generic_names(generics: &str) -> Vec<String> {
    if generics.is_empty() {
        return Vec::new();
    }
    let mut names = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in generics.chars() {
        match c {
            '<' | '(' | '[' => {
                depth += 1;
                current.push(c);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                names.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        names.push(current.trim().to_string());
    }
    names
        .into_iter()
        .map(|p| p.split(':').next().unwrap_or("").trim().to_string())
        .filter(|p| !p.is_empty())
        .collect()
}

/// Parses the type tokens of one field: everything until a comma at
/// angle-bracket depth zero.
fn take_type(tokens: &mut std::iter::Peekable<std::vec::IntoIter<TokenTree>>) -> String {
    let mut depth = 0i32;
    let mut text = String::new();
    while let Some(tok) = tokens.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
        }
        push_token(&mut text, &tokens.next().expect("peeked"));
    }
    // Skip the trailing comma.
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        tokens.next();
    }
    text.trim().to_string()
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut tokens = group.into_iter().collect::<Vec<_>>().into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let attrs = take_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else { break };
        // Consume the ':'.
        tokens.next();
        let ty = take_type(&mut tokens);
        fields.push(Field { name: Some(name.to_string()), ty, attrs });
    }
    fields
}

fn parse_tuple_fields(group: TokenStream) -> Vec<Field> {
    let mut tokens = group.into_iter().collect::<Vec<_>>().into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let attrs = take_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let ty = take_type(&mut tokens);
        if ty.is_empty() {
            break;
        }
        fields.push(Field { name: None, ty, attrs });
    }
    fields
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut tokens = group.into_iter().collect::<Vec<_>>().into_iter().peekable();
    let mut variants = Vec::new();
    while tokens.peek().is_some() {
        let _attrs = take_attrs(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else { break };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                Fields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip a trailing comma.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name: name.to_string(), fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().collect::<Vec<_>>().into_iter().peekable();
    let attrs = take_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    let generics = take_generics(&mut tokens);
    let data = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}`")),
    };
    Ok(Input { name, generics, attrs, data })
}

// ---------------------------------------------------------------------------
// Code generation helpers
// ---------------------------------------------------------------------------

fn type_is_option(ty: &str) -> bool {
    let t = ty.trim_start_matches(":: ").trim();
    t.starts_with("Option ") || t.starts_with("Option<") || t == "Option"
        || t.starts_with("core :: option :: Option")
        || t.starts_with("std :: option :: Option")
}

/// `impl` header pieces: (`<'a, T>` for the impl, `<'a, T>` for the type).
fn impl_generics(input: &Input, extra: Option<&str>) -> (String, String) {
    let names = generic_names(&input.generics);
    let mut decl_parts: Vec<String> = Vec::new();
    if let Some(e) = extra {
        decl_parts.push(e.to_string());
    }
    if !input.generics.is_empty() {
        decl_parts.push(input.generics.clone());
    }
    let decl =
        if decl_parts.is_empty() { String::new() } else { format!("<{}>", decl_parts.join(", ")) };
    let ty = if names.is_empty() { String::new() } else { format!("<{}>", names.join(", ")) };
    (decl, ty)
}

fn ser_field_expr(access: &str, attrs: &SerdeAttrs) -> String {
    match &attrs.with {
        Some(module) => format!(
            "{module}::serialize({access}, ::serde::ValueSerializer)\
             .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?"
        ),
        None => format!(
            "::serde::to_value({access})\
             .map_err(|e| <S::Error as ::serde::ser::Error>::custom(e))?"
        ),
    }
}

fn de_field_expr(value_expr: &str, ty: &str, attrs: &SerdeAttrs) -> String {
    match &attrs.with {
        Some(module) => format!(
            "{module}::deserialize(::serde::ValueDeserializer::new({value_expr}))\
             .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?"
        ),
        None => format!(
            "<{ty} as ::serde::Deserialize<'_>>::deserialize(\
             ::serde::ValueDeserializer::new({value_expr}))\
             .map_err(|e| <D::Error as ::serde::de::Error>::custom(e))?"
        ),
    }
}

// ---------------------------------------------------------------------------
// Serialize derive
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let (decl, ty) = impl_generics(input, None);
    let body = match &input.data {
        Data::Struct(fields) => gen_serialize_struct(input, fields),
        Data::Enum(variants) => gen_serialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl{decl} ::serde::Serialize for {name}{ty} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_serialize_struct(input: &Input, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "serializer.serialize_value(::serde::Value::Null)".to_string(),
        Fields::Tuple(fs) if fs.len() == 1 || input.attrs.transparent => {
            // Newtype / transparent: serialize the inner field directly.
            let expr = ser_field_expr("&self.0", &fs[0].attrs);
            format!("let __serde_v = {expr}; serializer.serialize_value(__serde_v)")
        }
        Fields::Tuple(fs) => {
            let mut out = String::from(
                "let mut __serde_items: ::std::vec::Vec<::serde::Value> = ::std::vec::Vec::new();\n",
            );
            for (i, f) in fs.iter().enumerate() {
                let expr = ser_field_expr(&format!("&self.{i}"), &f.attrs);
                out.push_str(&format!("__serde_items.push({expr});\n"));
            }
            out.push_str("serializer.serialize_value(::serde::Value::Array(__serde_items))");
            out
        }
        Fields::Named(fs) if input.attrs.transparent && fs.len() == 1 => {
            let fname = fs[0].name.as_deref().expect("named field");
            let expr = ser_field_expr(&format!("&self.{fname}"), &fs[0].attrs);
            format!("let __serde_v = {expr}; serializer.serialize_value(__serde_v)")
        }
        Fields::Named(fs) => {
            let mut out = String::from(
                "let mut __serde_entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new();\n",
            );
            for f in fs {
                let fname = f.name.as_deref().expect("named field");
                let expr = ser_field_expr(&format!("&self.{fname}"), &f.attrs);
                let push = format!(
                    "__serde_entries.push((::std::string::String::from(\"{fname}\"), {expr}));\n"
                );
                match &f.attrs.skip_serializing_if {
                    Some(pred) => out.push_str(&format!(
                        "if !{pred}(&self.{fname}) {{ {push} }}\n"
                    )),
                    None => out.push_str(&push),
                }
            }
            out.push_str("serializer.serialize_value(::serde::Value::Object(__serde_entries))");
            out
        }
    }
}

fn gen_serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => serializer.serialize_value(\
                 ::serde::Value::String(::std::string::String::from(\"{vname}\"))),\n"
            )),
            Fields::Tuple(fs) if fs.len() == 1 => {
                let expr = ser_field_expr("__serde_f0", &fs[0].attrs);
                arms.push_str(&format!(
                    "{name}::{vname}(__serde_f0) => {{\n\
                         let __serde_v = {expr};\n\
                         serializer.serialize_value(::serde::Value::Object(vec![(\
                         ::std::string::String::from(\"{vname}\"), __serde_v)]))\n\
                     }}\n"
                ));
            }
            Fields::Tuple(fs) => {
                let binders: Vec<String> =
                    (0..fs.len()).map(|i| format!("__serde_f{i}")).collect();
                let mut body = String::from(
                    "let mut __serde_items: ::std::vec::Vec<::serde::Value> = \
                     ::std::vec::Vec::new();\n",
                );
                for (i, f) in fs.iter().enumerate() {
                    let expr = ser_field_expr(&format!("__serde_f{i}"), &f.attrs);
                    body.push_str(&format!("__serde_items.push({expr});\n"));
                }
                body.push_str(&format!(
                    "serializer.serialize_value(::serde::Value::Object(vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Array(__serde_items))]))"
                ));
                arms.push_str(&format!(
                    "{name}::{vname}({}) => {{ {body} }}\n",
                    binders.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let binders: Vec<&str> =
                    fs.iter().map(|f| f.name.as_deref().expect("named")).collect();
                let mut body = String::from(
                    "let mut __serde_entries: \
                     ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fs {
                    let fname = f.name.as_deref().expect("named");
                    let expr = ser_field_expr(fname, &f.attrs);
                    body.push_str(&format!(
                        "__serde_entries.push((::std::string::String::from(\"{fname}\"), \
                         {expr}));\n"
                    ));
                }
                body.push_str(&format!(
                    "serializer.serialize_value(::serde::Value::Object(vec![(\
                     ::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(__serde_entries))]))"
                ));
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{ {body} }}\n",
                    binders.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}\n}}")
}

// ---------------------------------------------------------------------------
// Deserialize derive
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    if !input.generics.is_empty() {
        return format!(
            "compile_error!(\"the vendored serde derive does not support generics on \
             Deserialize (type {name})\");"
        );
    }
    let body = match &input.data {
        Data::Struct(fields) => gen_deserialize_struct(input, fields),
        Data::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Generates the extraction of named `fields` from `__serde_entries` into
/// local variables named after the fields, followed by `tail`.
fn gen_named_extraction(fields: &[Field], constructor: &str) -> String {
    let mut out = String::new();
    let mut inits = Vec::new();
    for f in fields {
        let fname = f.name.as_deref().expect("named field");
        let deser = de_field_expr("__serde_val", &f.ty, &f.attrs);
        let missing = if type_is_option(&f.ty) && f.attrs.with.is_none() {
            "::core::option::Option::None".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(\
                 \"missing field `{fname}`\"))"
            )
        };
        out.push_str(&format!(
            "let __serde_{fname} = match __serde_entries.iter()\
             .position(|(__serde_k, _)| __serde_k == \"{fname}\") {{\n\
                 ::core::option::Option::Some(__serde_i) => {{\n\
                     let __serde_val = __serde_entries.remove(__serde_i).1;\n\
                     {deser}\n\
                 }}\n\
                 ::core::option::Option::None => {{ {missing} }}\n\
             }};\n"
        ));
        inits.push(format!("{fname}: __serde_{fname}"));
    }
    out.push_str(&format!(
        "::core::result::Result::Ok({constructor} {{ {} }})",
        inits.join(", ")
    ));
    out
}

fn gen_deserialize_struct(input: &Input, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            "let _ = deserializer.into_value()?; ::core::result::Result::Ok(Self)".to_string()
        }
        Fields::Tuple(fs) if fs.len() == 1 || input.attrs.transparent => {
            let deser = match &fs[0].attrs.with {
                Some(module) => format!(
                    "{module}::deserialize(deserializer)?"
                ),
                None => format!(
                    "<{} as ::serde::Deserialize<'de>>::deserialize(deserializer)?",
                    fs[0].ty
                ),
            };
            format!("::core::result::Result::Ok(Self({deser}))")
        }
        Fields::Named(fs) if input.attrs.transparent && fs.len() == 1 => {
            let fname = fs[0].name.as_deref().expect("named field");
            let deser = format!(
                "<{} as ::serde::Deserialize<'de>>::deserialize(deserializer)?",
                fs[0].ty
            );
            format!("::core::result::Result::Ok(Self {{ {fname}: {deser} }})")
        }
        Fields::Tuple(fs) => {
            let mut out = String::from(
                "let __serde_v = ::serde::Deserializer::into_value(deserializer)?;\n\
                 let __serde_items = __serde_v.into_array().map_err(|__serde_k| \
                 <D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"expected array, found {}\", __serde_k)))?;\n",
            );
            out.push_str(&format!(
                "if __serde_items.len() != {} {{\n\
                     return ::core::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(\"tuple length mismatch\"));\n\
                 }}\n\
                 let mut __serde_iter = __serde_items.into_iter();\n",
                fs.len()
            ));
            let mut inits = Vec::new();
            for (i, f) in fs.iter().enumerate() {
                let deser = de_field_expr(
                    "__serde_iter.next().expect(\"length checked\")",
                    &f.ty,
                    &f.attrs,
                );
                out.push_str(&format!("let __serde_f{i} = {deser};\n"));
                inits.push(format!("__serde_f{i}"));
            }
            out.push_str(&format!(
                "::core::result::Result::Ok(Self({}))",
                inits.join(", ")
            ));
            out
        }
        Fields::Named(fs) => {
            let mut out = String::from(
                "let __serde_v = ::serde::Deserializer::into_value(deserializer)?;\n\
                 let mut __serde_entries = __serde_v.into_object().map_err(|__serde_k| \
                 <D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"expected object, found {}\", __serde_k)))?;\n",
            );
            out.push_str(&gen_named_extraction(fs, "Self"));
            out
        }
    }
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    for v in variants {
        if matches!(v.fields, Fields::Unit) {
            let vname = &v.name;
            unit_arms.push_str(&format!(
                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
            ));
        }
    }
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {}
            Fields::Tuple(fs) if fs.len() == 1 => {
                let deser = de_field_expr("__serde_val", &fs[0].ty, &fs[0].attrs);
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         ::core::result::Result::Ok({name}::{vname}({deser}))\n\
                     }}\n"
                ));
            }
            Fields::Tuple(fs) => {
                let mut body = String::from(
                    "let __serde_items = __serde_val.into_array().map_err(|__serde_k| \
                     <D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"expected array, found {}\", __serde_k)))?;\n\
                     let mut __serde_iter = __serde_items.into_iter();\n",
                );
                let mut inits = Vec::new();
                for (i, f) in fs.iter().enumerate() {
                    let deser = de_field_expr(
                        "__serde_iter.next().ok_or_else(|| \
                         <D::Error as ::serde::de::Error>::custom(\"tuple variant too short\"))?",
                        &f.ty,
                        &f.attrs,
                    );
                    body.push_str(&format!("let __serde_f{i} = {deser};\n"));
                    inits.push(format!("__serde_f{i}"));
                }
                body.push_str(&format!(
                    "::core::result::Result::Ok({name}::{vname}({}))",
                    inits.join(", ")
                ));
                tagged_arms.push_str(&format!("\"{vname}\" => {{ {body} }}\n"));
            }
            Fields::Named(fs) => {
                let mut body = String::from(
                    "let mut __serde_entries = __serde_val.into_object().map_err(|__serde_k| \
                     <D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"expected object, found {}\", __serde_k)))?;\n",
                );
                body.push_str(&gen_named_extraction(fs, &format!("{name}::{vname}")));
                tagged_arms.push_str(&format!("\"{vname}\" => {{ {body} }}\n"));
            }
        }
    }
    format!(
        "let __serde_v = ::serde::Deserializer::into_value(deserializer)?;\n\
         match __serde_v {{\n\
             ::serde::Value::String(__serde_s) => match __serde_s.as_str() {{\n\
                 {unit_arms}\n\
                 __serde_other => ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __serde_other))),\n\
             }},\n\
             ::serde::Value::Object(mut __serde_entries) => {{\n\
                 if __serde_entries.len() != 1 {{\n\
                     return ::core::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(\
                     \"expected single-key object for enum variant\"));\n\
                 }}\n\
                 let (__serde_key, __serde_val) = __serde_entries.remove(0);\n\
                 match __serde_key.as_str() {{\n\
                     {tagged_arms}\n\
                     __serde_other => ::core::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"unknown variant `{{}}` of {name}\", __serde_other))),\n\
                 }}\n\
             }}\n\
             __serde_other => ::core::result::Result::Err(\
             <D::Error as ::serde::de::Error>::custom(::std::format!(\
             \"expected string or object for enum {name}, found {{}}\", \
             __serde_other.kind()))),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return error_stream(&e),
    };
    gen_serialize(&parsed).parse().expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return error_stream(&e),
    };
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl must parse")
}

fn error_stream(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error stream must parse")
}
