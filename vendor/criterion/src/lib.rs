//! In-tree stand-in for `criterion` covering this workspace's bench
//! surface: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurements are a simple mean of wall-clock iterations — no
//! statistical analysis, warm-up, or HTML reports.

use std::time::{Duration, Instant};

/// Benchmark driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let name = name.into();
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let total: Duration = bencher.samples.iter().sum();
        let count = bencher.samples.len().max(1);
        let mean = total / count as u32;
        println!("bench {}/{name}: mean {mean:?} over {count} samples", self.name);
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Opaque value sink preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
