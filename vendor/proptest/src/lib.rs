//! In-tree stand-in for `proptest` covering this workspace's surface:
//! the `proptest!` macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` attribute, range/tuple/`Just`/collection
//! strategies, `prop_map`/`prop_flat_map`, `prop_oneof!`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! seed and message, not a minimized input) and a fixed deterministic
//! seed sequence per test.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Per-case generation context (wraps the RNG).
    pub struct TestRunner {
        pub(crate) rng: StdRng,
    }

    impl TestRunner {
        pub(crate) fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    /// A generator of test inputs (shim of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returning a fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, runner: &mut TestRunner) -> S2::Value {
            (self.f)(self.inner.generate(runner)).generate(runner)
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union over `options` (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            let i = runner.rng().gen_range(0..self.options.len());
            self.options[i].generate(runner)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.start..self.end)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    impl Strategy for ::std::ops::Range<char> {
        type Value = char;

        fn generate(&self, runner: &mut TestRunner) -> char {
            loop {
                let code = runner.rng().gen_range(self.start as u32..self.end as u32);
                if let Some(c) = char::from_u32(code) {
                    return c;
                }
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A / 0)
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
        (A / 0, B / 1, C / 2, D / 3, E / 4)
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    }

    impl Strategy for bool {
        type Value = bool;

        fn generate(&self, _runner: &mut TestRunner) -> bool {
            *self
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRunner};
    use rand::Rng;

    /// Count specifications accepted by [`vec`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for ::std::ops::Range<usize> {
        fn sample(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.start..self.end)
        }
    }

    impl SizeRange for ::std::ops::RangeInclusive<usize> {
        fn sample(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Builds a [`VecStrategy`] (shim of `proptest::collection::vec`).
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.size.sample(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod test_runner {
    use super::strategy::TestRunner;
    use rand::{rngs::StdRng, SeedableRng};

    /// Runner configuration (shim of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — the property does not hold.
        Fail(String),
        /// Input rejected by `prop_assume!` — retried, not counted.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejected case with `message`.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    const MAX_GLOBAL_REJECTS: u32 = 65_536;

    /// Drives `body` for `config.cases` passing cases with deterministic
    /// per-case seeds. Panics on the first failing case (no shrinking).
    pub fn run(
        config: &ProptestConfig,
        name: &str,
        mut body: impl FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
    ) {
        let name_hash = fnv1a(name.as_bytes());
        let mut rejects = 0u32;
        let mut attempt = 0u64;
        let mut passed = 0u32;
        while passed < config.cases {
            let seed = name_hash ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            attempt += 1;
            let mut runner = TestRunner { rng: StdRng::seed_from_u64(seed) };
            match body(&mut runner) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects < MAX_GLOBAL_REJECTS,
                        "proptest `{name}`: too many prop_assume! rejections"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest `{name}` failed at case {passed} (seed {seed:#x}): {message}"
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Common imports (shim of `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests with `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @config(<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __proptest_config = $config;
            $crate::test_runner::run(
                &__proptest_config,
                stringify!($name),
                |__proptest_runner| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __proptest_runner,
                        );
                    )+
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __left,
            __right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            __left,
            format!($($fmt)+)
        );
    }};
}

/// Rejects (retries) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assume failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($option),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u64..10, pair in (0usize..5, 0i32..3)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5 && pair.1 < 3);
        }

        #[test]
        fn vec_and_flat_map(
            items in prop::collection::vec((0u64..100, 0u8..2), 0..20),
            derived in (1usize..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..10, n))
            }),
        ) {
            prop_assert!(items.len() < 20);
            prop_assert_eq!(derived.1.len(), derived.0);
        }

        #[test]
        fn oneof_and_assume(choice in prop_oneof![Just(1u8), Just(2u8)], x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(choice == 1 || choice == 2);
            prop_assert_ne!(x, 3);
        }
    }
}
