//! In-tree stand-in for `crossbeam` covering the surface this workspace
//! uses: multi-producer **multi-consumer** `unbounded` / `bounded`
//! channels with blocking `send`/`recv`, `try_recv`, and iteration
//! (implemented over `Mutex<VecDeque>` + `Condvar`), plus scoped threads
//! (`thread::scope`, implemented over `std::thread::scope`).

/// Scoped threads (shim of `crossbeam::thread`).
///
/// Differences from upstream: the closure passed to [`Scope::spawn`]
/// takes no `&Scope` argument (nested spawning is not part of this
/// workspace's surface), and unjoined child panics are reported through
/// the `Err` of [`scope`] rather than resuming per-thread payloads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to a [`scope`] invocation.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned permission to join a scoped thread (shim of
    /// `crossbeam::thread::ScopedJoinHandle`).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(f) }
        }
    }

    /// Creates a scope in which threads may borrow non-`'static` data;
    /// every spawned thread is joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Returns the panic payload when the closure itself panics (which
    /// includes the implicit end-of-scope join of any panicked child
    /// that was not joined explicitly).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(&Scope { inner: s }))))
    }
}

/// MPMC channels (shim of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel. Clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel with unlimited buffering.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel buffering at most `cap` items (`send` blocks
    /// when full).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Sends `item`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the item back when every receiver has been dropped.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                let full = state.capacity.is_some_and(|cap| state.items.len() >= cap);
                if !full {
                    state.items.push_back(item);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).expect("channel lock");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives one item, blocking while the channel is empty.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Receives one item without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is buffered;
        /// [`TryRecvError::Disconnected`] when additionally every
        /// sender has been dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock");
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().expect("channel lock").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received items.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_without_receivers() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.iter().map(|&x| s.spawn(move || x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|| panic!("child failed"));
        });
        assert!(result.is_err());
    }
}
