//! In-tree stand-in for `serde_json`, layered on the vendored `serde`
//! facade's [`Value`] tree.
//!
//! Supports the workspace's surface: [`to_string`], [`to_string_pretty`],
//! and [`from_str`], with a hand-rolled recursive-descent JSON parser.

pub use serde::Value;

use serde::{from_value, to_value, Deserialize, Serialize};

/// Error produced while serializing or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching real `serde_json`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Returns [`Error`] when the value's `Serialize` impl fails.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error(e.to_string()))?;
    Ok(serde::write_compact(&v))
}

/// Serializes `value` as pretty JSON text (2-space indent).
///
/// # Errors
///
/// Returns [`Error`] when the value's `Serialize` impl fails.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value).map_err(|e| Error(e.to_string()))?;
    Ok(serde::write_pretty(&v))
}

/// Parses JSON text and deserializes it into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a mismatched shape.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    from_value(value).map_err(|e| Error(e.to_string()))
}

fn parse_value_complete(text: &str) -> Result<Value> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self.peek().ok_or_else(|| Error("unexpected end of input".to_string()))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: u8) -> Result<()> {
        let b = self.bump()?;
        if b != expected {
            return Err(Error(format!(
                "expected `{}`, found `{}` at byte {}",
                expected as char,
                b as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<()> {
        for &expected in keyword.as_bytes() {
            self.expect(expected)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error(format!("unexpected `{}` at byte {}", c as char, self.pos))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(entries)),
                c => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        c as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(
                            c.ok_or_else(|| Error("invalid unicode escape".to_string()))?,
                        );
                    }
                    c => {
                        return Err(Error(format!("invalid escape `\\{}`", c as char)));
                    }
                },
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error("truncated UTF-8 sequence".to_string()));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error(format!("invalid hex digit `{}`", b as char)))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
        assert_eq!(to_string(&42u64).unwrap(), "42");
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
