//! In-tree stand-in for `parking_lot`: non-poisoning [`Mutex`],
//! [`RwLock`], and [`Condvar`] wrappers over `std::sync`.
//!
//! Matches the parking_lot API shape (lock methods return guards
//! directly, no `Result`); a poisoned inner lock is recovered rather
//! than propagated, mirroring parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Guard for an exclusive [`Mutex`] lock.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for a shared [`RwLock`] read lock.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for an exclusive [`RwLock`] write lock.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free std rebind: std's API consumes and returns the
        // guard, so swap through an Option to fit parking_lot's
        // `&mut guard` shape.
        replace_with(guard, |g| self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` when
    /// the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        replace_with(guard, |g| {
            let (g, result) =
                self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Moves the guard out of `slot`, passes it through `f`, and stores the
/// returned guard back. Aborts if `f` panics (guard would be lost).
fn replace_with<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = AbortOnPanic;
    // SAFETY: `slot` is a valid initialized guard; we read it out, feed
    // it to `f`, and write the replacement back before anyone can see
    // the moved-from slot. A panic in `f` aborts, so the duplicated
    // guard is never dropped twice.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(0u64));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }
}
