//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serde-compatible facade: the same `Serialize` / `Deserialize`
//! trait shapes (including derive macros, `#[serde(transparent)]`,
//! `#[serde(with = "...")]`, and `#[serde(skip_serializing_if = "...")]`),
//! backed by a single self-describing [`Value`] data model instead of the
//! real crate's visitor machinery. `serde_json` (also vendored) is the only
//! data format in the workspace, so the Value-backed design is lossless
//! for every type the project serializes.

mod value;

pub use value::{write_compact, write_pretty, Number, Value};

pub use serde_derive::{Deserialize, Serialize};

/// Serialization error helpers (mirrors `serde::ser`).
pub mod ser {
    use core::fmt::Display;

    /// Errors produced while serializing.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Deserialization error helpers (mirrors `serde::de`).
pub mod de {
    use core::fmt::Display;

    /// Errors produced while deserializing.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can turn one [`Value`] into its output form.
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type of the format.
    type Error: ser::Error;

    /// Consumes a fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce one [`Value`] from its input form.
pub trait Deserializer<'de>: Sized {
    /// Error type of the format.
    type Error: de::Error;

    /// Produces the input as a value tree.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given format.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes an instance from the given format.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A simple string-message error used by the in-memory [`ValueSerializer`]
/// and [`ValueDeserializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl core::fmt::Display for ValueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: core::fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: core::fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer that materializes the value tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer reading from an in-memory value tree.
pub struct ValueDeserializer(Value);

impl ValueDeserializer {
    /// Wraps a value tree for deserialization.
    #[must_use]
    pub fn new(value: Value) -> Self {
        ValueDeserializer(value)
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn into_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serializes any value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserializes any owned type from a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer::new(value))
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for primitives and std types.
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::UInt(u64::from(*self)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.into_value()?;
                let n = v.as_u64().ok_or_else(|| {
                    de::Error::custom(format!(
                        "expected unsigned integer, found {}", v.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("integer {} out of range", n))
                })
            }
        }
    )*};
}

impl_ser_de_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::UInt(*self as u64))
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let n = u64::deserialize(deserializer)?;
        usize::try_from(n).map_err(|_| de::Error::custom(format!("integer {n} out of range")))
    }
}

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Int(i64::from(*self)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.into_value()?;
                let n = v.as_i64().ok_or_else(|| {
                    de::Error::custom(format!("expected integer, found {}", v.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("integer {} out of range", n))
                })
            }
        }
    )*};
}

impl_ser_de_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Int(*self as i64))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let n = i64::deserialize(deserializer)?;
        isize::try_from(n).map_err(|_| de::Error::custom(format!("integer {n} out of range")))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.into_value()?;
        v.as_f64()
            .ok_or_else(|| de::Error::custom(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Float(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(f64::deserialize(deserializer)? as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.into_value()?;
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.into_value()?;
        match v {
            Value::String(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.into_value()?;
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(ValueDeserializer::new(other))
                .map(Some)
                .map_err(|e| de::Error::custom(e)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(to_value(item).map_err(|e| ser::Error::custom(e))?);
        }
        serializer.serialize_value(Value::Array(out))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.into_value()?;
        match v {
            Value::Array(items) => items
                .into_iter()
                .map(|item| {
                    T::deserialize(ValueDeserializer::new(item)).map_err(|e| de::Error::custom(e))
                })
                .collect(),
            other => Err(de::Error::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_ser_de_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let out = vec![
                    $(to_value(&self.$idx).map_err(|e| ser::Error::custom(e))?),+
                ];
                serializer.serialize_value(Value::Array(out))
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                let v = deserializer.into_value()?;
                let Value::Array(items) = v else {
                    return Err(de::Error::custom("expected array for tuple"));
                };
                let expected = [$(stringify!($t)),+].len();
                if items.len() != expected {
                    return Err(de::Error::custom(format!(
                        "expected array of length {}, found {}", expected, items.len()
                    )));
                }
                let mut iter = items.into_iter();
                Ok((
                    $({
                        let _ = stringify!($idx);
                        $t::deserialize(ValueDeserializer::new(
                            iter.next().expect("length checked"),
                        ))
                        .map_err(|e| de::Error::custom(e))?
                    },)+
                ))
            }
        }
    )*};
}

impl_ser_de_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize, S2> Serialize for std::collections::HashMap<K, V, S2> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, Value)> = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = match to_value(k).map_err(|e| ser::Error::custom(e))? {
                Value::String(s) => s,
                other => other.to_json_key(),
            };
            entries.push((key, to_value(v).map_err(|e| ser::Error::custom(e))?));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        serializer.serialize_value(Value::Object(entries))
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(String, Value)> = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = match to_value(k).map_err(|e| ser::Error::custom(e))? {
                Value::String(s) => s,
                other => other.to_json_key(),
            };
            entries.push((key, to_value(v).map_err(|e| ser::Error::custom(e))?));
        }
        serializer.serialize_value(Value::Object(entries))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.into_value()
    }
}
