//! The self-describing value tree shared by the vendored `serde` facade
//! and the vendored `serde_json` format.

use core::fmt;

/// A JSON-shaped value tree.
///
/// Object entries preserve insertion order, which keeps every serialized
/// artifact in the workspace byte-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (positives normalize to [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered set of named entries.
    Object(Vec<(String, Value)>),
}

/// Numeric view of a [`Value`] (kept for API familiarity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Negative integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Float.
    Float(f64),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as `&str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object entry by key (`None` for non-objects too).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Consumes the value into object entries.
    ///
    /// # Errors
    ///
    /// Returns the kind name of the non-object value.
    pub fn into_object(self) -> Result<Vec<(String, Value)>, &'static str> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(other.kind()),
        }
    }

    /// Consumes the value into array items.
    ///
    /// # Errors
    ///
    /// Returns the kind name of the non-array value.
    pub fn into_array(self) -> Result<Vec<Value>, &'static str> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(other.kind()),
        }
    }

    /// Renders a scalar as a JSON object key (maps with non-string keys).
    #[must_use]
    pub fn to_json_key(&self) -> String {
        match self {
            Value::String(s) => s.clone(),
            Value::UInt(n) => n.to_string(),
            Value::Int(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => format!("{other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::value::write_compact(self))
    }
}

/// Renders a value as compact JSON (no whitespace).
#[must_use]
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Renders a value as pretty JSON with 2-space indentation.
#[must_use]
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => out.push_str(&format_f64(*x)),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
