//! # data-staging
//!
//! A Rust reproduction of *"Scheduling Heuristics for Data Requests in an
//! Oversubscribed Network with Priorities and Deadlines"* (Theys, Tan,
//! Beck, Siegel, Jurczyk — ICDCS 2000).
//!
//! The crate re-exports the whole workspace:
//!
//! * [`model`] — machines, virtual links, data items, requests (§3);
//! * [`resources`] — link schedules and storage timelines;
//! * [`path`] — the time-dependent multiple-source Dijkstra (§4.2);
//! * [`core`] — the three heuristics, four cost criteria, bounds, and
//!   baselines (§4.5–4.8, §5.2);
//! * [`workload`] — the §5.3 random scenario generator;
//! * [`sim`] — the experiment harness regenerating Figures 2–5 and the
//!   §5.4 text results;
//! * [`dynamic`] — the online (rolling-horizon) extension: ad-hoc request
//!   releases, link outages, and copy losses with re-planning (the
//!   paper's stated future work);
//! * [`service`] — the concurrent admission-control daemon: a TCP
//!   NDJSON protocol (`submit`/`query`/`snapshot`/`metrics`/`shutdown`)
//!   around a live ledger, with client and load-generator binaries;
//! * [`obs`] — the deterministic observability tap: atomic metric
//!   registry, Prometheus exposition, and a bounded flight recorder.
//!
//! # Examples
//!
//! Schedule a generated scenario with the paper's best pairing:
//!
//! ```
//! use data_staging::prelude::*;
//!
//! let scenario = data_staging::workload::generate(
//!     &data_staging::workload::GeneratorConfig::small(), 7);
//! let outcome = run(&scenario, Heuristic::FullPathOneDestination,
//!     &HeuristicConfig::paper_best());
//! let eval = outcome.schedule.evaluate(&scenario,
//!     &PriorityWeights::paper_1_10_100());
//! assert!(eval.satisfied_count <= eval.request_count);
//! ```
//!
//! See `examples/` for runnable end-to-end programs and DESIGN.md for the
//! full experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dstage_core as core;
pub use dstage_dynamic as dynamic;
pub use dstage_model as model;
pub use dstage_obs as obs;
pub use dstage_path as path;
pub use dstage_resources as resources;
pub use dstage_service as service;
pub use dstage_sim as sim;
pub use dstage_workload as workload;

/// One-stop imports: the model vocabulary plus the scheduling API.
pub mod prelude {
    pub use dstage_core::prelude::*;
    pub use dstage_model::prelude::*;
}
