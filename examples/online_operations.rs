//! Online operations: the dynamic extension in action. A paper-scale
//! scenario runs under live disturbances — ad-hoc requests arriving
//! mid-horizon, a link outage killing an in-flight transfer, and a
//! destination losing its copy (healed from a γ-retained intermediate
//! copy) — with the scheduler re-planning at every event.
//!
//! ```text
//! cargo run --release --example online_operations [seed]
//! ```

use data_staging::dynamic::{simulate, Event, EventKind, EventLog, OnlinePolicy};
use data_staging::prelude::*;
use data_staging::workload::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(0);
    let scenario = generate(&GeneratorConfig::paper(), seed);
    let weights = PriorityWeights::paper_1_10_100();
    println!(
        "scenario seed {seed}: {} machines, {} links, {} requests",
        scenario.network().machine_count(),
        scenario.network().link_count(),
        scenario.request_count()
    );

    // Baseline: the undisturbed static schedule.
    let policy = OnlinePolicy::paper_best();
    let offline = run(&scenario, policy.heuristic, &policy.config);
    let offline_eval = offline.schedule.evaluate(&scenario, &weights);
    println!(
        "static schedule: weighted sum {} ({} of {} requests)\n",
        offline_eval.weighted_sum, offline_eval.satisfied_count, offline_eval.request_count
    );

    // Disturbances: a fifth of the requests are ad-hoc (released during
    // the first 20 minutes), one link fails at 10 minutes, and one early
    // delivery is wiped out at 30 minutes.
    let mut events = Vec::new();
    for (req_id, _) in scenario.requests() {
        if req_id.index() % 5 == 0 {
            let at = SimTime::from_secs(60 + (req_id.index() as u64 * 37) % 1_140);
            events.push(Event::new(at, EventKind::Release(req_id)));
        }
    }
    events.push(Event::new(SimTime::from_mins(10), EventKind::LinkOutage(VirtualLinkId::new(0))));
    if let Some(d) = offline.schedule.deliveries().first() {
        let req = scenario.request(d.request);
        events.push(Event::new(
            SimTime::from_mins(30),
            EventKind::CopyLoss { item: req.item(), machine: req.destination() },
        ));
        println!(
            "injected copy loss: item {} at machine {} (t=30m)",
            scenario.item(req.item()).name(),
            scenario.network().machine(req.destination()).name()
        );
    }
    let log = EventLog::new(&scenario, events)?;
    println!("event log: {} events at {} boundaries", log.events().len(), log.boundaries().len());

    let outcome = simulate(&scenario, &log, &policy);
    let eval = outcome.executed.evaluate(&scenario, &weights);
    println!(
        "\nonline schedule: weighted sum {} ({} of {} requests)",
        eval.weighted_sum, eval.satisfied_count, eval.request_count
    );
    println!(
        "  {} re-plans, {} transfers executed, {} transfers cancelled by disturbances",
        outcome.replans,
        outcome.executed.transfers().len(),
        outcome.cancelled.len()
    );
    println!(
        "  degradation vs static: {:.1}%",
        100.0 * (offline_eval.weighted_sum as f64 - eval.weighted_sum as f64)
            / offline_eval.weighted_sum as f64
    );
    Ok(())
}
