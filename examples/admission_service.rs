//! Admission-control service end to end: starts the daemon in-process on
//! an ephemeral loopback port, drives it with concurrent NDJSON clients
//! (the same wire protocol `stage-submit` speaks), injects a live link
//! outage that forces a schedule repair, and shows that the snapshot is
//! a deterministic function of the decision order by replaying it
//! sequentially through a fresh engine.
//!
//! ```text
//! cargo run --release --example admission_service
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;

use data_staging::core::heuristic::{Heuristic, HeuristicConfig};
use data_staging::service::engine::AdmissionEngine;
use data_staging::service::server::{Server, ServerConfig};
use data_staging::workload::{generate, GeneratorConfig};
use serde::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = generate(&GeneratorConfig::small(), 7);
    let heuristic = Heuristic::FullPathOneDestination;
    let config = HeuristicConfig::paper_best();
    let engine = AdmissionEngine::new(&catalog, heuristic, config.clone());
    println!("catalog: {} machines, {} items", engine.machine_count(), engine.item_names().count());

    // The daemon, exactly as `stage-serve` runs it.
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default())?;
    let addr = server.local_addr()?;
    let daemon = thread::spawn(move || server.run());

    // Four concurrent clients, each submitting a share of the catalog's
    // request stream over its own connection.
    let requests: Vec<(String, u64, u64, u8)> = catalog
        .requests()
        .map(|(_, r)| {
            (
                catalog.item(r.item()).name().to_string(),
                r.destination().index() as u64,
                r.deadline().as_millis(),
                r.priority().level(),
            )
        })
        .collect();
    let mut clients = Vec::new();
    for chunk in requests.chunks(requests.len().div_ceil(4)) {
        let chunk = chunk.to_vec();
        clients.push(thread::spawn(move || -> Result<u64, std::io::Error> {
            let stream = TcpStream::connect(addr)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            let mut admitted = 0;
            let mut response = String::new();
            for (item, destination, deadline_ms, priority) in chunk {
                writeln!(
                    writer,
                    r#"{{"verb":"submit","item":"{item}","destination":{destination},"deadline_ms":{deadline_ms},"priority":{priority}}}"#
                )?;
                writer.flush()?;
                response.clear();
                reader.read_line(&mut response)?;
                if response.contains(r#""decision":"admitted""#) {
                    admitted += 1;
                }
            }
            Ok(admitted)
        }));
    }
    let mut admitted = 0;
    for client in clients {
        admitted += client.join().expect("client thread panicked")?;
    }
    println!("{admitted} of {} submissions admitted over the wire", requests.len());

    // A live disturbance: a heavily used virtual link goes down right
    // after the schedule is built. The engine cancels every committed
    // transfer the outage invalidates and re-admits displaced requests
    // in weighted-priority order, evicting only what no longer fits.
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    writeln!(writer, r#"{{"verb":"inject","kind":"link_outage","link":193,"at_ms":1}}"#)?;
    writer.flush()?;
    reader.read_line(&mut line)?;
    let injection: Value = serde_json::from_str(line.trim())?;
    println!(
        "link 193 outage: {} transfers cancelled, {} requests displaced, {} repaired, {} evicted",
        injection.get("cancelled_transfers").and_then(Value::as_u64).unwrap_or(0),
        injection.get("displaced").and_then(Value::as_u64).unwrap_or(0),
        injection.get("repaired").and_then(Value::as_u64).unwrap_or(0),
        injection.get("evicted").and_then(Value::as_u64).unwrap_or(0),
    );

    // Pull the authoritative state, then shut the daemon down.
    line.clear();
    writeln!(writer, r#"{{"verb":"snapshot"}}"#)?;
    writer.flush()?;
    reader.read_line(&mut line)?;
    let snapshot: Value = serde_json::from_str(line.trim())?;
    writeln!(writer, r#"{{"verb":"shutdown"}}"#)?;
    writer.flush()?;
    let final_snapshot = daemon.join().expect("daemon thread panicked")?;
    println!(
        "daemon drained with weighted sum {}",
        final_snapshot.get("weighted_sum").and_then(Value::as_u64).unwrap_or(0)
    );

    // Determinism: replaying the daemon's decision log — submissions
    // and injections alike — sequentially through a fresh engine
    // reproduces the snapshot byte for byte.
    let mut replay = AdmissionEngine::new(&catalog, heuristic, config);
    for entry in snapshot.get("log").and_then(Value::as_array).unwrap_or(&Vec::new()) {
        replay.replay_record(entry).map_err(std::io::Error::other)?;
    }
    let replayed = serde_json::to_string(&replay.snapshot())?;
    assert_eq!(replayed, line.trim(), "sequential replay must match the live snapshot");
    println!("sequential replay reproduced the snapshot byte for byte");
    Ok(())
}
