//! Parallel sweeps end to end: prefetches a figure's (scheduler ×
//! weighting × case) work units across worker threads, then renders the
//! report from the warmed cache and shows it is byte-identical to a
//! sequential run of the same suite.
//!
//! Thread count resolution mirrors the `figures` binary: an explicit
//! count beats `DSTAGE_THREADS`, which beats the host's available
//! parallelism.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! DSTAGE_THREADS=2 cargo run --release --example parallel_sweep
//! ```

use std::time::Instant;

use data_staging::sim::experiments;
use data_staging::sim::runner::Harness;
use data_staging::sim::{available_threads, resolve_threads};
use data_staging::workload::GeneratorConfig;

fn main() {
    const CASES: usize = 8;
    let threads = resolve_threads(None);
    println!(
        "sweeping {CASES} cases on {threads} threads ({} cores available)",
        available_threads()
    );

    // Sequential reference: the classic cache-as-you-go path.
    let started = Instant::now();
    let sequential: Vec<String> = experiments::all(&Harness::new(&GeneratorConfig::small(), CASES))
        .iter()
        .map(|r| r.to_text())
        .collect();
    println!("sequential: {:.2?}", started.elapsed());

    // Parallel: prefetch every work unit, then render from the cache.
    let harness = Harness::new(&GeneratorConfig::small(), CASES);
    let started = Instant::now();
    let parallel: Vec<String> =
        experiments::all_parallel(&harness, threads).iter().map(|r| r.to_text()).collect();
    println!("{threads} threads: {:.2?}", started.elapsed());

    // Scheduling outputs are byte-identical whatever the thread count
    // (only the exec table's measured wall-clock column ever differs).
    let identical = sequential.iter().zip(parallel.iter()).filter(|(s, p)| s == p).count();
    println!("{identical}/{} reports byte-identical", sequential.len());

    // Print one of the regenerated figures as proof of life.
    if let Some(report) = experiments::all(&harness).iter().find(|r| r.id == "fig2") {
        println!("\n{}", report.to_text());
    }
}
