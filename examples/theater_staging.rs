//! Theater staging: the structured BADD-flavoured workload — rear sites
//! on terrestrial fiber, a theater hub behind an intermittent satellite
//! trunk, forward spokes on slow VSAT links. Shows how the scheduler
//! packs the trunk's 15-minute passes and stages data at the hub for the
//! slow last hop.
//!
//! ```text
//! cargo run --release --example theater_staging [seed]
//! ```

use data_staging::prelude::*;
use data_staging::sim::report::render_schedule_timeline;
use data_staging::workload::satcom::{generate_satcom, SatcomConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(0);
    let config = SatcomConfig::default();
    let scenario = generate_satcom(&config, seed);
    println!(
        "satcom scenario seed {seed}: {} rear sites, 1 hub, {} spokes; {} items, {} requests",
        config.rear_sites,
        config.spokes,
        scenario.item_count(),
        scenario.request_count(),
    );
    println!(
        "trunk: {} per pass, {} on / {} off\n",
        config.trunk, config.trunk_window, config.trunk_gap
    );

    let weights = PriorityWeights::paper_1_10_100();
    let outcome = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());
    outcome.schedule.validate(&scenario)?;
    let eval = outcome.schedule.evaluate(&scenario, &weights);
    println!(
        "scheduled: weighted sum {} — {}/{} requests (high {}/{}, medium {}/{}, low {}/{})",
        eval.weighted_sum,
        eval.satisfied_count,
        eval.request_count,
        eval.satisfied_by_priority[2],
        eval.total_by_priority[2],
        eval.satisfied_by_priority[1],
        eval.total_by_priority[1],
        eval.satisfied_by_priority[0],
        eval.total_by_priority[0],
    );

    // How much of the staging went through the hub?
    let hub = MachineId::new(config.rear_sites as u32);
    let through_hub =
        outcome.schedule.transfers().iter().filter(|t| t.to == hub || t.from == hub).count();
    println!(
        "{} of {} transfers touch the hub (trunk passes + VSAT fan-out)\n",
        through_hub,
        outcome.schedule.transfers().len()
    );
    println!("{}", render_schedule_timeline(&scenario, &outcome.schedule, 100));
    Ok(())
}
