//! Heuristic shootout: sweeps the E-U ratio for every heuristic/criterion
//! pair over a handful of random scenarios and prints the resulting
//! mini-figure — the fastest way to see the shapes of Figures 3–5 without
//! the full 40-case run.
//!
//! ```text
//! cargo run --release --example heuristic_shootout [n_cases]
//! ```

use data_staging::sim::experiments::{fig3, fig4, fig5, prio_first};
use data_staging::sim::runner::Harness;
use data_staging::workload::GeneratorConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_cases: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(4);
    println!(
        "running {n_cases} paper-scale cases per point (Figures 3-5 use 40; \
         use the `figures` binary for the full run)\n"
    );
    let harness = Harness::new(&GeneratorConfig::paper(), n_cases);
    for report in [fig3(&harness), fig4(&harness), fig5(&harness), prio_first(&harness)] {
        println!("{}", report.to_text());
    }
    Ok(())
}
