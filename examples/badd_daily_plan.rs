//! A BADD-style daily staging plan: a paper-scale random scenario
//! (oversubscribed network, hundreds of prioritized deadline requests) is
//! scheduled by all three heuristics, the two random lower bounds, and
//! the priority-first scheme, and the outcomes are compared against the
//! upper bounds — a one-scenario slice of the paper's Figure 2.
//!
//! ```text
//! cargo run --release --example badd_daily_plan [seed]
//! ```

use data_staging::core::baselines::{priority_first, random_dijkstra, single_dijkstra_random};
use data_staging::core::bounds::{possible_satisfy, upper_bound};
use data_staging::core::cost::{CostCriterion, EuWeights};
use data_staging::prelude::*;
use data_staging::workload::{generate, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(0);
    let scenario = generate(&GeneratorConfig::paper(), seed);
    let weights = PriorityWeights::paper_1_10_100();

    println!(
        "scenario seed {seed}: {} machines, {} virtual links, {} items, {} requests",
        scenario.network().machine_count(),
        scenario.network().link_count(),
        scenario.item_count(),
        scenario.request_count(),
    );
    let ub = upper_bound(&scenario, &weights);
    let ps = possible_satisfy(&scenario, &weights);
    println!("upper_bound       = {ub:>6}   (all requests satisfied)");
    println!(
        "possible_satisfy  = {:>6}   ({} of {} requests feasible alone)",
        ps.weighted_sum,
        ps.satisfiable.len(),
        scenario.request_count(),
    );

    // The heuristics, at the C4 pairing with an E-U ratio of 10^2 (a
    // consistently strong point of the sweep in our reproduction).
    let config = HeuristicConfig {
        criterion: CostCriterion::C4,
        eu: EuWeights::from_log10_ratio(2.0),
        priority_weights: weights.clone(),
        caching: true,
    };
    for heuristic in Heuristic::ALL {
        let outcome = run(&scenario, heuristic, &config);
        outcome.schedule.validate(&scenario)?;
        let eval = outcome.schedule.evaluate(&scenario, &weights);
        println!(
            "{:<18}= {:>6}   ({} satisfied: {} low / {} med / {} high; {} transfers)",
            format!("{heuristic}/C4"),
            eval.weighted_sum,
            eval.satisfied_count,
            eval.satisfied_by_priority[0],
            eval.satisfied_by_priority[1],
            eval.satisfied_by_priority[2],
            outcome.metrics.transfers_committed,
        );
    }

    // Comparison schedulers.
    let pf = priority_first(&scenario, &weights);
    pf.schedule.validate(&scenario)?;
    let pf_eval = pf.schedule.evaluate(&scenario, &weights);
    println!(
        "priority_first    = {:>6}   ({} satisfied, high first, blind to urgency)",
        pf_eval.weighted_sum, pf_eval.satisfied_count
    );
    let rd = random_dijkstra(&scenario, seed).schedule.evaluate(&scenario, &weights);
    println!("random_Dijkstra   = {:>6}   (lower bound: random step choice)", rd.weighted_sum);
    let sd = single_dijkstra_random(&scenario, seed).schedule.evaluate(&scenario, &weights);
    println!(
        "single_Dij_random = {:>6}   (lower bound: stale plans, no re-planning)",
        sd.weighted_sum
    );
    Ok(())
}
