//! Custom network walkthrough: models the paper's own Figure 1 example —
//! intermittent satellite windows, an intermediate staging node with tight
//! storage, and competing requests for the same item — and shows how the
//! shortest-path layer and garbage collection interact.
//!
//! ```text
//! cargo run --example custom_network
//! ```

use data_staging::core::cost::{CostCriterion, EuWeights};
use data_staging::path::{earliest_arrival_tree, ItemQuery};
use data_staging::prelude::*;
use data_staging::resources::ledger::NetworkLedger;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Machines: a source, a storage-tight relay, and two consumers.
    let mut net = NetworkBuilder::new();
    let source = net.add_machine(Machine::new("source", Bytes::from_mib(100)));
    let relay = net.add_machine(Machine::new("relay", Bytes::from_mib(1))); // tight!
    let recon = net.add_machine(Machine::new("recon", Bytes::from_mib(50)));
    let logistics = net.add_machine(Machine::new("logistics", Bytes::from_mib(50)));

    // The satellite uplink source -> relay is only up for two fifteen-
    // minute windows each hour: two *virtual links* for one physical link.
    for window_start in [0u64, 60] {
        net.add_link(VirtualLink::new(
            source,
            relay,
            SimTime::from_mins(window_start),
            SimTime::from_mins(window_start + 15),
            BitsPerSec::from_kbps(512),
        ));
    }
    // Terrestrial links from the relay are always available but slow.
    let horizon = SimTime::from_hours(2);
    net.add_link(VirtualLink::new(relay, recon, SimTime::ZERO, horizon, BitsPerSec::from_kbps(96)));
    net.add_link(VirtualLink::new(
        relay,
        logistics,
        SimTime::ZERO,
        horizon,
        BitsPerSec::from_kbps(96),
    ));

    // One 800 KiB item; both consumers request it — the general before the
    // private, as the paper puts it.
    let scenario = Scenario::builder(net.build())
        .add_item(DataItem::new(
            "air-tasking-order",
            Bytes::from_kib(800),
            vec![DataSource::new(source, SimTime::ZERO)],
        ))
        .add_request(Request::new(
            DataItemId::new(0),
            recon,
            SimTime::from_mins(40),
            Priority::HIGH,
        ))
        .add_request(Request::new(
            DataItemId::new(0),
            logistics,
            SimTime::from_mins(90),
            Priority::LOW,
        ))
        .build()?;

    // Peek under the hood: the earliest-arrival tree for the item on the
    // pristine network. This is exactly what each heuristic iteration
    // consults.
    let mut ledger = NetworkLedger::new(scenario.network());
    for (_, item) in scenario.items() {
        for src in item.sources() {
            ledger.force_storage(src.machine, item.size(), src.available_at, scenario.horizon());
        }
    }
    let gc = scenario.gc_time(DataItemId::new(0)).expect("item is requested");
    println!("garbage collection for intermediates at {gc} (latest deadline + 6 min)\n");
    let hold: Vec<SimTime> = scenario
        .network()
        .machine_ids()
        .map(|m| {
            let is_dest = scenario
                .requests_for(DataItemId::new(0))
                .iter()
                .any(|&r| scenario.request(r).destination() == m);
            if is_dest {
                scenario.horizon()
            } else {
                gc
            }
        })
        .collect();
    let sources: Vec<_> = scenario
        .item(DataItemId::new(0))
        .sources()
        .iter()
        .map(|s| (s.machine, s.available_at))
        .collect();
    let tree = earliest_arrival_tree(&ItemQuery {
        network: scenario.network(),
        ledger: &ledger,
        size: scenario.item(DataItemId::new(0)).size(),
        sources: &sources,
        hold_until: &hold,
        horizon: scenario.horizon(),
    });
    for m in scenario.network().machine_ids() {
        println!(
            "earliest arrival at {:<10} {}",
            scenario.network().machine(m).name(),
            if tree.is_reachable(m) { tree.arrival(m).to_string() } else { "unreachable".into() },
        );
    }

    // Now let the partial path heuristic schedule it hop by hop, watching
    // the urgency term at work (C1 scores destinations individually).
    let config = HeuristicConfig {
        criterion: CostCriterion::C1,
        eu: EuWeights::from_log10_ratio(1.0),
        priority_weights: PriorityWeights::paper_1_10_100(),
        caching: true,
    };
    let outcome = run(&scenario, Heuristic::PartialPath, &config);
    println!("\npartial path heuristic with C1 committed:");
    for t in outcome.schedule.transfers() {
        println!(
            "  {} -> {}  [{} .. {}]",
            scenario.network().machine(t.from).name(),
            scenario.network().machine(t.to).name(),
            t.start,
            t.arrival,
        );
    }
    for (req_id, req) in scenario.requests() {
        let status = match outcome.schedule.delivery_of(req_id) {
            Some(d) => format!("delivered at {}", d.at),
            None => "missed".into(),
        };
        println!(
            "  request at {:<10} ({} priority, deadline {}): {status}",
            scenario.network().machine(req.destination()).name(),
            req.priority(),
            req.deadline(),
        );
    }
    outcome.schedule.validate(&scenario)?;
    Ok(())
}
