//! Quickstart: build a small network by hand, request two data items, and
//! schedule them with the paper's best heuristic/cost pairing.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use data_staging::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-machine network: headquarters, a relay, and two field units.
    // Links are unidirectional; the relay fans out to both field units.
    let mut net = NetworkBuilder::new();
    let hq = net.add_machine(Machine::new("hq", Bytes::from_gib(1)));
    let relay = net.add_machine(Machine::new("relay", Bytes::from_mib(64)));
    let field_a = net.add_machine(Machine::new("field-a", Bytes::from_mib(32)));
    let field_b = net.add_machine(Machine::new("field-b", Bytes::from_mib(32)));

    let all_day = SimTime::from_hours(2);
    // hq -> relay: a healthy 1.5 Mbit/s trunk.
    net.add_link(VirtualLink::new(hq, relay, SimTime::ZERO, all_day, BitsPerSec::new(1_500_000)));
    // relay -> field units: slow tactical links.
    net.add_link(VirtualLink::new(
        relay,
        field_a,
        SimTime::ZERO,
        all_day,
        BitsPerSec::from_kbps(128),
    ));
    net.add_link(VirtualLink::new(
        relay,
        field_b,
        SimTime::ZERO,
        all_day,
        BitsPerSec::from_kbps(64),
    ));

    // Two data items stored at headquarters.
    let scenario = Scenario::builder(net.build())
        .add_item(DataItem::new(
            "terrain-map",
            Bytes::from_mib(2),
            vec![DataSource::new(hq, SimTime::ZERO)],
        ))
        .add_item(DataItem::new(
            "weather-forecast",
            Bytes::from_kib(300),
            vec![DataSource::new(hq, SimTime::from_mins(5))],
        ))
        // Both field units need the terrain map; only field-b needs the
        // forecast. Deadlines and priorities differ per request.
        .add_request(Request::new(
            DataItemId::new(0),
            field_a,
            SimTime::from_mins(20),
            Priority::HIGH,
        ))
        .add_request(Request::new(
            DataItemId::new(0),
            field_b,
            SimTime::from_mins(45),
            Priority::MEDIUM,
        ))
        .add_request(Request::new(
            DataItemId::new(1),
            field_b,
            SimTime::from_mins(30),
            Priority::LOW,
        ))
        .build()?;

    // Schedule with the paper's best pairing: full path/one destination
    // heuristic with cost criterion C4.
    let outcome = run(&scenario, Heuristic::FullPathOneDestination, &HeuristicConfig::paper_best());

    println!("committed transfers:");
    for t in outcome.schedule.transfers() {
        let item = scenario.item(t.item);
        println!(
            "  {:<18} {} -> {}  start {}  arrive {}",
            item.name(),
            scenario.network().machine(t.from).name(),
            scenario.network().machine(t.to).name(),
            t.start,
            t.arrival,
        );
    }

    println!("\ndeliveries:");
    for (req_id, req) in scenario.requests() {
        match outcome.schedule.delivery_of(req_id) {
            Some(d) => println!(
                "  {:<18} at {:<10} -> delivered {} (deadline {}, {} priority)",
                scenario.item(req.item()).name(),
                scenario.network().machine(req.destination()).name(),
                d.at,
                req.deadline(),
                req.priority(),
            ),
            None => println!(
                "  {:<18} at {:<10} -> NOT satisfied",
                scenario.item(req.item()).name(),
                scenario.network().machine(req.destination()).name(),
            ),
        }
    }

    let eval = outcome.schedule.evaluate(&scenario, &PriorityWeights::paper_1_10_100());
    println!(
        "\nweighted sum of satisfied priorities: {} ({} of {} requests)",
        eval.weighted_sum, eval.satisfied_count, eval.request_count
    );

    // The schedule replays cleanly against an independent validator.
    outcome.schedule.validate(&scenario)?;
    println!("schedule validated: every transfer fits links, windows, and storage");
    Ok(())
}
